"""Tests for the client-pull remote-framebuffer baseline."""

import numpy as np
import pytest

from repro.apps.text_editor import TextEditorApp
from repro.baseline.rfb import (
    ENC_RAW,
    ENC_ZLIB,
    RfbClient,
    RfbError,
    RfbServer,
    decode_rect,
    encode_rect,
)
from repro.baseline.session import BaselineSession
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.surface.framebuffer import WHITE
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def wm():
    return WindowManager(320, 240)


class TestRectCodec:
    def test_raw_roundtrip(self, noise_image):
        h, w = noise_image.shape[:2]
        data = encode_rect(noise_image, ENC_RAW)
        assert np.array_equal(decode_rect(data, w, h, ENC_RAW), noise_image)

    def test_zlib_roundtrip(self, noise_image):
        h, w = noise_image.shape[:2]
        data = encode_rect(noise_image, ENC_ZLIB)
        assert np.array_equal(decode_rect(data, w, h, ENC_ZLIB), noise_image)

    def test_bad_encoding(self, noise_image):
        with pytest.raises(RfbError):
            encode_rect(noise_image, 9)
        with pytest.raises(RfbError):
            decode_rect(b"", 2, 2, 9)

    def test_length_mismatch(self):
        with pytest.raises(RfbError):
            decode_rect(b"\x00" * 10, 4, 4, ENC_RAW)


class TestServerClient:
    def test_first_pull_gets_full_screen(self, wm):
        wm.create_window(Rect(10, 10, 50, 50), fill=WHITE)
        server = RfbServer(wm)
        client = RfbClient(320, 240)
        client.apply_update(server.handle_request("c1"))
        assert client.matches(wm)

    def test_incremental_pull_only_changes(self, wm):
        win = wm.create_window(Rect(0, 0, 100, 100))
        server = RfbServer(wm)
        client = RfbClient(320, 240)
        first = server.handle_request("c1")
        client.apply_update(first)
        # No change → empty update.
        second = server.handle_request("c1")
        rects = client.apply_update(second)
        assert rects == 0
        assert len(second) < len(first)
        # Small change → small update.
        win.fill(WHITE, Rect(0, 0, 8, 8))
        third = server.handle_request("c1")
        assert client.apply_update(third) >= 1
        assert client.matches(wm)

    def test_per_client_state_independent(self, wm):
        win = wm.create_window(Rect(0, 0, 100, 100))
        server = RfbServer(wm)
        a = RfbClient(320, 240)
        b = RfbClient(320, 240)
        a.apply_update(server.handle_request("a"))
        win.fill(WHITE, Rect(0, 0, 10, 10))
        a.apply_update(server.handle_request("a"))
        # b pulls for the first time: gets the whole (current) screen.
        b.apply_update(server.handle_request("b"))
        assert a.matches(wm) and b.matches(wm)

    def test_malformed_update_rejected(self):
        client = RfbClient(32, 32)
        with pytest.raises(RfbError):
            client.apply_update(b"U")
        with pytest.raises(RfbError):
            client.apply_update(b"X\x00\x00")


class TestBaselineSession:
    def test_converges_over_channel(self, clock, wm):
        win = wm.create_window(Rect(20, 20, 200, 150))
        editor = TextEditorApp(win)
        link = duplex_reliable(ChannelConfig(delay=0.01), clock.now)
        session = BaselineSession(wm, link, clock.now)
        for i in range(200):
            if i % 10 == 0 and i < 100:
                editor.type_text(f"line {i} ")
            session.tick()
            clock.advance(0.01)
        assert session.client.matches(wm)
        assert session.requests_sent > 1
        assert session.update_round_trips

    def test_pull_latency_includes_round_trip(self, clock, wm):
        wm.create_window(Rect(0, 0, 50, 50))
        link = duplex_reliable(ChannelConfig(delay=0.05), clock.now)
        session = BaselineSession(wm, link, clock.now)
        for _ in range(100):
            session.tick()
            clock.advance(0.01)
        # Request there (50ms) + response back (50ms) at minimum.
        assert min(session.update_round_trips) >= 0.1
