"""``python -m repro.obs --report``: waterfall, exports, regression gate."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.report import REGRESSION_TOLERANCE, check_regression
from repro.obs.spans import STAGES

ROUNDS = 60


@pytest.fixture(scope="module")
def bench(tmp_path_factory):
    """One baseline report run with every export flag set."""
    out = tmp_path_factory.mktemp("bench")
    paths = {
        "json": out / "BENCH_trace.json",
        "chrome": out / "trace.chrome.json",
        "prom": out / "metrics.prom",
    }
    rc = main([
        "--report", "baseline", "--rounds", str(ROUNDS),
        "--json", str(paths["json"]),
        "--chrome", str(paths["chrome"]),
        "--prom", str(paths["prom"]),
    ])
    assert rc == 0
    return paths


class TestExports:
    def test_json_payload_schema(self, bench):
        payload = json.loads(bench["json"].read_text())
        assert payload["bench"] == "trace"
        assert payload["scenario"] == "baseline"
        assert payload["rounds"] == ROUNDS
        assert set(payload["stages"]) == set(STAGES)
        for row in payload["stages"].values():
            assert set(row) == {"count", "p50", "p95", "p99"}
        assert set(payload["e2e"]) == {"no", "yes"}
        assert payload["e2e"]["no"]["count"] > 0
        assert payload["spans"]["completed"] > 0

    def test_chrome_trace_is_loadable(self, bench):
        doc = json.loads(bench["chrome"].read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases  # completed span stages
        assert "M" in phases  # process/thread metadata

    def test_prometheus_file(self, bench):
        text = bench["prom"].read_text()
        assert "repro_spans_started_total" in text
        assert "repro_update_e2e_seconds_count" in text


class TestRegressionGate:
    def test_gate_passes_against_identical_seed(self, bench, capsys):
        rc = main([
            "--report", "baseline", "--rounds", str(ROUNDS),
            "--baseline", str(bench["json"]),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "regression gate: PASS" in out
        assert "REGRESSION:" not in out

    def test_gate_fails_on_doctored_baseline(self, bench, tmp_path, capsys):
        seed = json.loads(bench["json"].read_text())
        seed["e2e"]["no"]["p95"] = 1e-6  # force a >25% regression
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(seed))
        rc = main([
            "--report", "baseline", "--rounds", str(ROUNDS),
            "--baseline", str(doctored),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION: e2e recovered=no" in out

    def test_waterfall_always_prints(self, bench, capsys):
        rc = main(["--report", "baseline", "--rounds", str(ROUNDS)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenario: baseline" in out
        for stage in STAGES:
            assert stage in out
        assert "e2e rec=no" in out
        assert "e2e rec=yes" in out


class TestCheckRegression:
    def _payload(self, p95, count=10):
        return {"e2e": {"no": {"count": count, "p50": p95, "p95": p95,
                               "p99": p95}}}

    def test_within_tolerance_passes(self):
        base = self._payload(0.030)
        now = self._payload(0.030 * (1 + REGRESSION_TOLERANCE) - 1e-9)
        assert check_regression(now, base) == []

    def test_above_tolerance_fails(self):
        failures = check_regression(self._payload(0.050), self._payload(0.030))
        assert len(failures) == 1
        assert "recovered=no" in failures[0]

    def test_samples_vanishing_fails(self):
        failures = check_regression(
            self._payload(None, count=0), self._payload(0.030)
        )
        assert failures == ["e2e recovered=no: no samples now (baseline had 10)"]

    def test_labels_missing_from_baseline_are_ignored(self):
        assert check_regression(self._payload(0.5), {"e2e": {}}) == []


def test_unknown_scenario_is_rejected():
    with pytest.raises(SystemExit):
        main(["--report", "cosmic-rays"])
