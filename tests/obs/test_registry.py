"""Tests for the metrics registry primitives."""

import pytest

from repro.obs import MetricsRegistry, render_name
from repro.obs.registry import Counter, Gauge, Histogram


class TestHandles:
    def test_counter_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("pkts", peer="p1")
        b = reg.counter("pkts", peer="p1")
        assert a is b
        a.inc()
        a.inc(4)
        assert b.value == 5

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        a = reg.counter("pkts", peer="p1", side="ah")
        b = reg.counter("pkts", side="ah", peer="p1")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("pkts", peer="p1").inc(3)
        reg.counter("pkts", peer="p2").inc(5)
        assert reg.total("pkts") == 8
        assert reg.total("pkts", peer="p2") == 5

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7.0)
        g.add(-2.0)
        assert g.value == 5.0

    def test_histogram_is_latency_recorder(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.1)
        h.record(0.3)  # the LatencyRecorder verb works too
        h.observe(-0.0001)  # negatives clamp, never raise
        assert h.count == 3
        assert h.summary()["max"] == pytest.approx(0.3)


class TestQueries:
    def test_get_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("pkts", peer="p1")
        assert reg.get("pkts", peer="p1") is c
        assert reg.get("pkts") is None

    def test_find_matches_label_supersets(self):
        reg = MetricsRegistry()
        reg.counter("pkts", peer="p1", side="ah").inc()
        reg.counter("pkts", peer="p1", side="participant").inc()
        reg.counter("other", peer="p1").inc()
        assert len(reg.find("pkts", peer="p1")) == 2
        assert len(reg.find("pkts", side="ah")) == 1
        assert reg.find("pkts", peer="nobody") == []

    def test_total_counts_histogram_samples(self):
        reg = MetricsRegistry()
        reg.histogram("lat", peer="p1").observe(0.5)
        reg.histogram("lat", peer="p2").observe(0.5)
        assert reg.total("lat") == 2


class TestSnapshot:
    def test_render_name(self):
        assert render_name("pkts", ()) == "pkts"
        assert (
            render_name("pkts", (("peer", "p1"), ("side", "ah")))
            == "pkts{peer=p1,side=ah}"
        )

    def test_snapshot_shape(self):
        import json

        reg = MetricsRegistry()
        reg.counter("pkts", peer="p1").inc(2)
        reg.gauge("depth").set(3.0)
        reg.histogram("lat").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"pkts{peer=p1}": 2}
        assert snap["gauges"] == {"depth": 3.0}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_metric_classes_export_identity(self):
        c = Counter("a", (("k", "v"),))
        g = Gauge("b")
        h = Histogram("c")
        assert (c.kind, g.kind, h.kind) == ("counter", "gauge", "histogram")
