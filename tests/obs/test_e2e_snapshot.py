"""Acceptance: one Instrumentation object observes a full SIP-signalled
lossy-UDP session, end to end.

A single injection at AH construction must reach the update scheduler,
the jitter buffer, RTP send/receive on both streams, token-bucket rate
control and the channel layer — verified by inspecting the session
snapshot, plus a reconstructable update-sent → update-applied latency
histogram.
"""

import json
import random

import pytest

from repro.net.channel import ChannelConfig
from repro.obs import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.sdp import build_ah_offer
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import PT_HIP, PT_REMOTING
from repro.sharing.service import SharingService
from repro.sip.dialog import DialogState, SipEndpoint
from repro.apps.terminal import TerminalApp
from repro.surface.geometry import Rect


def _establish_udp(service, name):
    """SIP handshake whose answer negotiates the UDP remoting stream."""
    remote_inbox: list[str] = []
    service_inbox: list[str] = []
    remote = SipEndpoint(
        f"sip:{name}@host", send=service_inbox.append, rng=random.Random(1)
    )
    service.invite(name, remote, remote_inbox, service_inbox)
    while remote_inbox:
        remote.receive(remote_inbox.pop(0))
    assert remote.state is DialogState.RINGING
    remote.accept(build_ah_offer(offer_tcp=False).to_string())
    service.pump_signalling()
    while remote_inbox:
        remote.receive(remote_inbox.pop(0))


@pytest.fixture(scope="module")
def session():
    clock = SimulatedClock()
    obs = Instrumentation(clock=clock)
    ah = ApplicationHost(clock=clock, instrumentation=obs)
    window = ah.windows.create_window(Rect(20, 20, 320, 240), title="log")
    terminal = TerminalApp(window)
    ah.apps.attach(terminal)
    service = SharingService(
        ah,
        clock,
        channel_config=ChannelConfig(delay=0.02, loss_rate=0.05, seed=3),
        rate_bps=4_000_000,
        instrumentation=obs,
    )
    _establish_udp(service, "alice")
    participant = service.participant_for("alice")
    assert participant is not None
    assert not participant.transport.reliable  # UDP path negotiated

    # ~12 simulated seconds: enough damage for loss → NACK → retransmit,
    # and well past the first randomised RTCP interval (≤ 7.5 s), so
    # SR-based latency estimation kicks in for later updates.
    for i in range(600):
        if i % 5 == 0:
            terminal.append_line(f"[{i:03d}] build output line {i}")
        if i % 40 == 0 and window.window_id in participant.windows:
            participant.move_mouse(window.window_id, 5 + i % 50, 7)
        service.advance(0.02)
    return obs, ah, participant, window


class TestUnifiedSnapshot:
    def test_all_five_layers_report(self, session):
        obs, _ah, _participant, _window = session
        reg = obs.registry
        # 1. Update scheduler (AH send path).
        assert reg.total("scheduler.packets_sent", peer="alice") > 0
        # 2. Jitter buffer (participant receive path, UDP only).
        assert reg.total("jitter.packets_buffered", peer="alice") > 0
        # 3. RTP layer, both streams.
        assert reg.total("rtp.packets_sent", pt=PT_REMOTING, side="ah") > 0
        assert reg.total(
            "rtp.packets_received", side="participant", stream="remoting"
        ) > 0
        # 4. Token-bucket rate control (the UDP tier).
        assert reg.total("ratecontrol.bytes_admitted") > 0
        # 5. Channel layer, both directions.
        assert reg.total("channel.datagrams_sent", dir="fwd") > 0
        assert reg.total("channel.datagrams_sent", dir="back") > 0

    def test_loss_recovery_counters_nonzero(self, session):
        obs, ah, participant, _window = session
        reg = obs.registry
        assert reg.total("channel.datagrams_dropped") > 0
        assert reg.total("participant.nacks_sent") == participant.nacks_sent > 0
        assert reg.total("ah.nacks_received") == ah.nacks_received > 0
        assert reg.total("scheduler.retransmit_packets") > 0

    def test_hip_and_rtcp_counters_nonzero(self, session):
        obs, _ah, participant, _window = session
        reg = obs.registry
        assert reg.total("rtp.packets_sent", pt=PT_HIP, peer="alice") > 0
        assert reg.total("rtcp.reports_sent", side="ah") > 0
        assert reg.total("rtcp.reports_sent", side="participant") > 0
        assert participant.stats.hip.packets > 0

    def test_update_latency_reconstructable_two_ways(self, session):
        obs, _ah, participant, _window = session
        # (a) Trace-event pairing on the shared RTP timestamp.
        latencies = obs.update_latencies()
        assert latencies.count > 0
        p50 = latencies.percentile(50)
        assert 0.0 < p50 < 1.0  # one-way delay is 20 ms + pacing
        # (b) The participant's own SR-anchored estimate (protocol-
        # faithful: derived from the RTCP NTP↔RTP mapping on the wire).
        assert participant.update_latency.count > 0
        assert 0.0 < participant.update_latency.percentile(50) < 1.0

    def test_snapshot_serialises_and_labels_render(self, session):
        obs, _ah, _participant, _window = session
        snap = obs.snapshot()
        json.dumps(snap)  # one JSON-serialisable dict per session
        assert any(
            key.startswith("scheduler.packets_sent{")
            and "peer=alice" in key
            and "side=ah" in key
            for key in snap["counters"]
        )
        assert snap["trace"]["kinds"].get("update.sent", 0) > 0
        assert snap["trace"]["kinds"].get("update.applied", 0) > 0

    def test_session_still_converges_under_instrumentation(self, session):
        _obs, ah, participant, _window = session
        # Observability must not perturb protocol behaviour.
        assert participant.screen_converged_with(ah.windows)
