"""SpanTracker unit behaviour: lifecycle, wire identity, rollups."""

import pytest

from repro.obs import Instrumentation
from repro.obs.spans import NULL_SPANS, STAGES, SpanTracker


@pytest.fixture
def obs():
    t = [0.0]
    ins = Instrumentation(clock=lambda: t[0])
    ins._tick = lambda dt: t.__setitem__(0, t[0] + dt)  # test hook
    return ins


class TestLifecycle:
    def test_complete_rolls_up_histograms(self, obs):
        spans = obs.spans
        sid = spans.begin(window=7)
        spans.mark(sid, "schedule", start=0.0, end=0.0)
        obs._tick(0.01)
        spans.mark(sid, "send")
        obs._tick(0.05)
        spans.mark(sid, "receive")
        spans.mark(sid, "apply")
        spans.complete(sid)

        assert spans.open_spans == 0
        span = spans.completed[0]
        assert span.outcome == "complete"
        assert span.attrs == {"window": 7}
        # network derived from send.end → receive.start
        assert span.stages["network"] == pytest.approx([0.01, 0.06])
        assert span.e2e_seconds() == pytest.approx(0.06)
        e2e = obs.registry.get("update.e2e_seconds", recovered="no")
        assert e2e.count == 1
        assert obs.registry.get("spans.completed", recovered="no").value == 1

    def test_recovered_label_routes_to_yes_histogram(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.mark(sid, "send")
        spans.recovered(sid)
        spans.complete(sid)
        assert obs.registry.get("update.e2e_seconds", recovered="yes").count == 1
        assert obs.registry.get("update.e2e_seconds", recovered="no").count == 0

    def test_abandon_counts_by_reason(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.abandon(sid, "give_up")
        assert spans.completed[0].outcome == "abandoned:give_up"
        assert obs.registry.get("spans.abandoned", reason="give_up").value == 1
        # finishing twice is a no-op
        spans.abandon(sid, "give_up")
        assert obs.registry.get("spans.abandoned", reason="give_up").value == 1

    def test_mark_widens_interval(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.mark(sid, "send", start=1.0, end=1.0)
        spans.mark(sid, "send", start=3.0, end=3.0)
        spans.mark(sid, "send", start=2.0, end=2.0)
        assert spans.get_open(sid).stages["send"] == [1.0, 3.0]

    def test_open_cap_evicts_oldest_as_abandoned(self, obs):
        spans = SpanTracker(obs, max_open=2)
        a = spans.begin()
        spans.begin()
        spans.begin()  # evicts a
        assert spans.open_spans == 2
        assert spans.get_open(a) is None
        assert obs.registry.get("spans.abandoned", reason="evicted").value == 1


class TestWireIdentity:
    def test_resolve_by_sequence_range(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.bind_range(sid, ssrc=9, first_seq=100, count=3, rtp_timestamp=77)
        assert spans.resolve(9, 100) == sid
        assert spans.resolve(9, 102) == sid
        assert spans.resolve(9, 103) is None
        assert spans.resolve(8, 100) is None  # different stream
        assert spans.get_open(sid).rtp_timestamp == 77

    def test_resolve_survives_16bit_wraparound(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.bind_range(sid, ssrc=1, first_seq=0xFFFE, count=4)
        # 0xFFFE, 0xFFFF, 0x0000, 0x0001 all belong to the span.
        for seq in (0xFFFE, 0xFFFF, 0x0000, 0x0001):
            assert spans.resolve(1, seq) == sid, hex(seq)
        assert spans.resolve(1, 0x0002) is None

    def test_finish_releases_index_entries(self, obs):
        spans = obs.spans
        sid = spans.begin()
        spans.bind_range(sid, ssrc=1, first_seq=10, count=2)
        spans.complete(sid)
        assert spans.resolve(1, 10) is None


class TestNullTracker:
    def test_all_verbs_are_noops(self):
        assert NULL_SPANS.enabled is False
        assert NULL_SPANS.begin(window=1) is None
        NULL_SPANS.mark(None, "send")
        NULL_SPANS.bind_range(None, 1, 2, 3)
        assert NULL_SPANS.resolve(1, 2) is None
        NULL_SPANS.recovered(None)
        NULL_SPANS.complete(None)
        NULL_SPANS.abandon(None, "give_up")
        assert NULL_SPANS.completed == ()

    def test_live_tracker_ignores_none_ids(self, obs):
        spans = obs.spans
        spans.mark(None, "send")
        spans.complete(None)
        spans.abandon(None, "give_up")
        assert len(spans.completed) == 0


def test_stage_catalogue_is_the_pipeline_order():
    assert STAGES == (
        "schedule", "encode", "parallel_encode", "fragment", "send",
        "network", "relay", "failover", "receive", "reassemble", "decode",
        "apply",
    )
