"""Acceptance: end-to-end causal tracing under adversarial networks.

Two scripted sessions exercise the full span pipeline:

* a Gilbert–Elliott burst-loss session where at least one update only
  completes because a NACK retransmission filled its loss — its span
  must carry the complete causal chain (schedule → … → apply) and
  land in the ``recovered=yes`` histograms and both exporters;
* a give-up session (AH ignores NACKs) where spans are abandoned and
  counted, and the flight recorder dumps fire exactly once per
  sentinel with the triggering event last.
"""

import json

import pytest

from repro.net.channel import FaultProfile
from repro.net.simulator import Simulation
from repro.obs import Instrumentation
from repro.obs.report import run_scenario
from repro.obs.spans import OPTIONAL_STAGES, STAGES

#: Stages every *direct* (relay-free) session must populate.
REQUIRED_STAGES = tuple(s for s in STAGES if s not in OPTIONAL_STAGES)
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from tests.integration.helpers import udp_pair


@pytest.fixture(scope="module")
def burst_obs():
    """One traced Gilbert–Elliott burst-loss session."""
    return run_scenario("burst", rounds=380)


def _recovered_spans(obs):
    return [
        span for span in obs.spans.completed
        if span.outcome == "complete" and span.recovered
    ]


class TestRecoveredSpans:
    def test_complete_causal_chain(self, burst_obs):
        recovered = _recovered_spans(burst_obs)
        assert recovered, "burst scenario produced no recovered updates"
        for span in recovered:
            missing = [s for s in REQUIRED_STAGES if s not in span.stages]
            assert not missing, (
                f"update {span.update_id} recovered but lost stages {missing}"
            )
            for stage in REQUIRED_STAGES:
                t0, t1 = span.stages[stage]
                assert t0 <= t1
            assert span.e2e_seconds() > 0
            # recovery cost is real: e2e spans at least one RTT of repair
            assert span.e2e_seconds() > span.stages["schedule"][1] - span.start

    def test_histograms_populated_for_every_stage(self, burst_obs):
        registry = burst_obs.registry
        for stage in REQUIRED_STAGES:
            h = registry.get("update.stage_seconds", stage=stage)
            assert h is not None and h.count > 0, stage
        yes = registry.get("update.e2e_seconds", recovered="yes")
        assert yes.count == len(_recovered_spans(burst_obs))
        assert yes.count >= 1
        p50, p95, p99 = yes.percentiles((50, 95, 99))
        assert 0 < p50 <= p95 <= p99

    def test_prometheus_export_carries_recovered_split(self, burst_obs):
        text = burst_obs.export_prometheus()
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_update_e2e_seconds_count")
            and 'recovered="yes"' in line
        )
        assert float(count_line.split(" ")[-1]) >= 1
        assert 'quantile="0.95"' in text

    def test_chrome_trace_carries_recovered_spans(self, burst_obs):
        doc = json.loads(burst_obs.export_chrome_trace())
        recovered_ids = {s.update_id for s in _recovered_spans(burst_obs)}
        events = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("update_id") in recovered_ids
        ]
        assert events
        assert all(e["args"]["recovered"] for e in events)
        stages_seen = {e["name"] for e in events}
        assert set(REQUIRED_STAGES) <= stages_seen


class TestGiveUpTracing:
    @pytest.fixture(scope="class")
    def give_up_obs(self):
        clock = SimulatedClock()
        obs = Instrumentation(clock=clock)
        obs.spans  # tracing on before the session is built
        # AH ignores NACKs while the participant believes retransmission
        # is supported: retries can only exhaust into give-up → PLI.
        config = SharingConfig(retransmissions=False)
        ah = ApplicationHost(config=config, clock=clock, instrumentation=obs)
        win = ah.windows.create_window(Rect(50, 50, 400, 300))
        from repro.apps.text_editor import TextEditorApp

        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = udp_pair(
            clock, ah, seed=17, instrumentation=obs,
            ah_supports_retransmissions=True,
            reorder_wait=30.0,
        )
        sim = Simulation(ah, clock, instrumentation=obs)
        sim.add_participant(participant)
        sim.run_seconds(1.0)
        assert participant.converged_with(ah.windows)

        link = participant.link.forward
        blackout = FaultProfile(loss_good=1.0, loss_bad=1.0)
        sim.at(1.2, lambda: link.set_faults(blackout))
        sim.at(1.21, lambda: editor.type_text("doomed update " * 30))
        sim.at(1.5, lambda: link.set_faults(None))
        sim.run_seconds(1.0)
        assert sim.run_until_converged(timeout=30.0)
        return obs

    def test_spans_abandoned_and_counted(self, give_up_obs):
        abandoned = [
            s for s in give_up_obs.spans.completed
            if s.outcome == "abandoned:give_up"
        ]
        assert abandoned
        counter = give_up_obs.registry.get("spans.abandoned", reason="give_up")
        assert counter.value == len(abandoned)
        # abandoned spans never contaminate the e2e latency histograms
        e2e_total = sum(
            give_up_obs.registry.get(
                "update.e2e_seconds", recovered=label
            ).count
            for label in ("no", "yes")
            if give_up_obs.registry.get("update.e2e_seconds", recovered=label)
        )
        completed = [
            s for s in give_up_obs.spans.completed if s.outcome == "complete"
        ]
        assert e2e_total == len(completed)

    def test_flight_dumps_fire_once_per_sentinel(self, give_up_obs):
        flight = give_up_obs.flight
        assert flight.dumps, "no flight dumps despite give-up + PLI"
        sentinels = {d["sentinel"] for d in flight.dumps}
        assert "recovery.gave_up" in sentinels
        assert "jitter.abandoned" in sentinels
        # exactly one dump per sentinel event (none dropped, none extra)
        assert flight.dumps_dropped == 0
        assert flight.sentinels_seen == len(flight.dumps)

    def test_triggering_event_is_last_in_every_dump(self, give_up_obs):
        for dump in give_up_obs.flight.dumps:
            trigger = dump["events"][-1]
            assert trigger["kind"] == dump["sentinel"]
            assert trigger["time"] == dump["time"]
