"""The no-op instrumentation overhead bound, runnable from tier-1.

Same check as ``python -m repro.obs --selftest``: the constructive
worst-case cost of the NULL handles (per-op cost × ops the workload
performs) must stay under 5 % of a bench_baseline-sized session's wall
time.
"""

from repro.obs.__main__ import OVERHEAD_BUDGET, _null_op_cost, selftest


def test_null_op_is_nanoseconds():
    # Each no-op observability call must cost well under a microsecond.
    assert _null_op_cost(samples=20_000) < 1e-6


def test_selftest_overhead_under_budget():
    assert 0 < OVERHEAD_BUDGET <= 0.05
    assert selftest(rounds=150, verbose=False)
