"""Strict validation of the Prometheus text exposition exporter.

A small strict parser checks the grammar the Prometheus scraper
enforces: metric/label name charsets, label-value escaping, HELP/TYPE
comment lines (once per family, TYPE before any sample), counter
``_total`` suffixes, and summary ``quantile``/``_sum``/``_count``
structure.
"""

import math
import re

import pytest

from repro.obs import Instrumentation
from repro.obs.export import (
    escape_label_value,
    prometheus_label_name,
    prometheus_name,
)

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
# label pairs: name="value" with only \", \\ and \n escapes inside.
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"'
)


def parse_exposition(text: str) -> dict:
    """Parse (strictly) into family → {type, help, samples}."""
    families: dict[str, dict] = {}
    current = None
    assert text == "" or text.endswith("\n"), "must end with a newline"
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert METRIC_NAME.match(name), name
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its family's HELP"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            assert kind in ("counter", "gauge", "summary", "histogram"), kind
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        m = SAMPLE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        name, labels, value = m.group("name", "labels", "value")
        base = re.sub(r"_(sum|count|total|bucket)$", "", name)
        family = families.get(name) or families.get(base)
        assert family is not None, f"sample {name} before its TYPE"
        assert family["type"] is not None, f"sample {name} before TYPE line"
        float(value)  # must parse
        seen = {}
        if labels:
            consumed = LABEL_PAIR.sub("", labels).strip(",")
            assert consumed == "", f"bad label syntax in {line!r}"
            for pm in LABEL_PAIR.finditer(labels):
                ln = pm.group("name")
                assert LABEL_NAME.match(ln), ln
                assert ln not in seen, f"duplicate label {ln} in {line!r}"
                seen[ln] = pm.group("value")
        family["samples"].append((name, seen, float(value)))
    for name, family in families.items():
        assert family["type"] is not None, f"family {name} missing TYPE"
    return families


@pytest.fixture
def obs():
    return Instrumentation()


class TestExposition:
    def test_counters_get_total_suffix(self, obs):
        obs.counter("scheduler.packets_sent", peer="p1").inc(3)
        families = parse_exposition(obs.export_prometheus())
        fam = families["repro_scheduler_packets_sent_total"]
        assert fam["type"] == "counter"
        assert fam["samples"] == [
            ("repro_scheduler_packets_sent_total", {"peer": "p1"}, 3.0)
        ]

    def test_gauge_and_summary_families(self, obs):
        obs.gauge("jitter.held").set(4.5)
        h = obs.histogram("update.e2e_seconds", recovered="no")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        families = parse_exposition(obs.export_prometheus())
        assert families["repro_jitter_held"]["type"] == "gauge"
        fam = families["repro_update_e2e_seconds"]
        assert fam["type"] == "summary"
        by_name = {}
        for name, labels, value in fam["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        quantiles = {
            labels["quantile"]
            for labels, _ in by_name["repro_update_e2e_seconds"]
        }
        assert quantiles == {"0.5", "0.95", "0.99"}
        (sum_labels, sum_value), = by_name["repro_update_e2e_seconds_sum"]
        assert sum_labels == {"recovered": "no"}
        assert math.isclose(sum_value, 0.06)
        (_, count_value), = by_name["repro_update_e2e_seconds_count"]
        assert count_value == 3.0

    def test_empty_histogram_skips_quantiles_keeps_count(self, obs):
        obs.histogram("update.e2e_seconds", recovered="yes")
        families = parse_exposition(obs.export_prometheus())
        names = [s[0] for s in families["repro_update_e2e_seconds"]["samples"]]
        assert "repro_update_e2e_seconds" not in names  # no quantile rows
        assert "repro_update_e2e_seconds_count" in names
        assert "repro_update_e2e_seconds_sum" in names

    def test_label_value_escaping(self, obs):
        hostile = 'quo"te\\back\nnewline'
        obs.counter("hardening.rejections", reason=hostile).inc()
        text = obs.export_prometheus()
        families = parse_exposition(text)
        fam = families["repro_hardening_rejections_total"]
        (_, labels, _), = fam["samples"]
        assert labels["reason"] == r"quo\"te\\back\nnewline"

    def test_output_is_sorted_and_deterministic(self, obs):
        obs.counter("b.metric").inc()
        obs.counter("a.metric", z="1").inc()
        obs.counter("a.metric", a="1").inc()
        text = obs.export_prometheus()
        assert text == obs.export_prometheus()
        order = [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert order == sorted(order)

    def test_whole_session_export_is_scrape_clean(self, obs):
        # A real traced session's registry, not a synthetic one.
        from repro.obs.report import run_scenario

        session = run_scenario("baseline", rounds=40)
        families = parse_exposition(session.export_prometheus())
        assert "repro_spans_started_total" in families
        assert "repro_update_stage_seconds" in families
        for name in families:
            assert METRIC_NAME.match(name)


class TestHelpers:
    def test_name_sanitisation(self):
        assert prometheus_name("a.b-c/d") == "repro_a_b_c_d"
        assert prometheus_name("x", namespace="") == "x"

    def test_label_name_sanitisation(self):
        assert prometheus_label_name("peer-id") == "peer_id"
        assert prometheus_label_name("0bad") == "_0bad"

    def test_escape(self):
        assert escape_label_value('a"b\\c\nd') == r"a\"b\\c\nd"
