"""Tests for the Instrumentation facade, null off-switch, and clock shims."""

import pytest

from repro.obs import NULL, Instrumentation, NullInstrumentation, as_now
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.participant import Participant
from repro.sharing.transport import StreamTransport
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.stats.metrics import LatencyRecorder, TrafficStats


class TestFacade:
    def test_counters_share_one_registry(self):
        obs = Instrumentation()
        obs.counter("pkts").inc(2)
        obs.count("pkts", 3)
        assert obs.registry.total("pkts") == 5

    def test_event_records_clocked_trace(self):
        clock = SimulatedClock()
        obs = Instrumentation(clock=clock)
        clock.advance(1.25)
        obs.event("thing", n=1)
        (event,) = obs.trace.events("thing")
        assert event.time == pytest.approx(1.25)
        assert event.attrs == {"n": 1}

    def test_scoped_labels_stamp_metrics_and_events(self):
        obs = Instrumentation()
        scoped = obs.scoped(peer="p1").scoped(side="ah")
        scoped.counter("pkts").inc()
        scoped.event("e")
        assert obs.registry.get("pkts", peer="p1", side="ah").value == 1
        assert obs.trace.events("e")[0].attrs == {"peer": "p1", "side": "ah"}

    def test_scoped_shares_registry_and_trace(self):
        obs = Instrumentation()
        scoped = obs.scoped(peer="p1")
        assert scoped.registry is obs.registry
        assert scoped.trace is obs.trace

    def test_traffic_stats_adapter_feeds_registry(self):
        obs = Instrumentation()
        stats = obs.traffic_stats(side="ah")
        stats.region_update.add(100, 112)
        stats.region_update.add(50, 62)
        # The legacy public attributes still read correctly...
        assert isinstance(stats, TrafficStats)
        assert stats.region_update.packets == 2
        assert stats.region_update.wire_bytes == 174
        # ...and the same adds landed in the shared registry.
        reg = obs.registry
        assert reg.total("traffic.packets", side="ah") == 2
        assert reg.get(
            "traffic.wire_bytes", side="ah", **{"class": "region_update"}
        ).value == 174

    def test_latency_recorder_is_registry_histogram(self):
        obs = Instrumentation()
        rec = obs.latency_recorder("participant.update_latency_seconds")
        assert isinstance(rec, LatencyRecorder)
        rec.record(0.05)
        snap = obs.snapshot()
        assert (
            snap["histograms"]["participant.update_latency_seconds"]["count"]
            == 1
        )

    def test_update_latencies_pairs_on_shared_key(self):
        clock = SimulatedClock()
        obs = Instrumentation(clock=clock)
        obs.event("update.sent", rtp_ts=1000)
        clock.advance(0.04)
        obs.event("update.applied", rtp_ts=1000)
        obs.event("update.applied", rtp_ts=9999)  # unmatched: skipped
        latencies = obs.update_latencies()
        assert latencies.count == 1
        assert latencies.max() == pytest.approx(0.04)

    def test_snapshot_includes_trace_summary_and_optional_events(self):
        obs = Instrumentation()
        obs.event("a")
        obs.event("a")
        obs.event("b")
        snap = obs.snapshot()
        assert snap["trace"] == {"events": 3, "kinds": {"a": 2, "b": 1}}
        assert "events" not in snap
        assert len(obs.snapshot(events=True)["events"]) == 3

    def test_bind_clock_repoints_trace(self):
        obs = Instrumentation()
        clock = SimulatedClock()
        clock.advance(2.0)
        obs.bind_clock(clock)
        obs.event("late")
        assert obs.trace.events("late")[0].time == pytest.approx(2.0)
        assert obs.now() == pytest.approx(2.0)


class TestNull:
    def test_null_is_disabled_and_stateless(self):
        assert NULL.enabled is False
        c = NULL.counter("anything", peer="p")
        c.inc(10**6)
        assert c.value == 0
        assert NULL.counter("other") is c  # shared singleton handle
        NULL.event("ignored")
        assert NULL.snapshot()["trace"]["events"] == 0

    def test_null_scoped_returns_self(self):
        assert NULL.scoped(peer="p1") is NULL

    def test_null_adapters_stay_live(self):
        # participant.stats / participant.update_latency must keep
        # working when observability is off.
        stats = NULL.traffic_stats()
        stats.hip.add(10, 22)
        assert stats.hip.packets == 1
        rec = NULL.latency_recorder("x")
        rec.record(0.1)
        assert rec.count == 1

    def test_fresh_null_instances_share_interface(self):
        null = NullInstrumentation()
        assert null.histogram("h").count == 0
        null.observe("h", 1.0)
        assert null.update_latencies().count == 0


class TestClockShims:
    def test_as_now_accepts_clock_like_and_callable(self):
        clock = SimulatedClock()
        clock.advance(3.0)
        assert as_now(clock)() == pytest.approx(3.0)
        assert as_now(clock.now)() == pytest.approx(3.0)
        with pytest.raises(TypeError):
            as_now(object())
        with pytest.raises(TypeError):
            as_now(None)

    def test_ah_now_kwarg_deprecated_but_working(self):
        clock = SimulatedClock()
        with pytest.deprecated_call(match="ApplicationHost"):
            ah = ApplicationHost(now=clock.now)
        clock.advance(1.0)
        assert ah._now() == pytest.approx(1.0)

    def test_ah_accepts_clock_object(self):
        clock = SimulatedClock()
        ah = ApplicationHost(clock=clock)
        clock.advance(0.5)
        assert ah._now() == pytest.approx(0.5)

    def test_participant_now_kwarg_deprecated_but_working(self):
        clock = SimulatedClock()
        link = duplex_reliable(ChannelConfig(), clock.now)
        transport = StreamTransport(link.backward, link.forward)
        with pytest.deprecated_call(match="Participant"):
            p = Participant("p1", transport, now=clock.now)
        clock.advance(2.5)
        assert p._now() == pytest.approx(2.5)

    def test_participant_requires_a_clock(self):
        clock = SimulatedClock()
        link = duplex_reliable(ChannelConfig(), clock.now)
        transport = StreamTransport(link.backward, link.forward)
        with pytest.raises(TypeError, match="Participant"):
            Participant("p1", transport)
