"""FlightRecorder: per-peer rings and sentinel-triggered dumps."""

import json

from repro.obs import Instrumentation
from repro.obs.flight import SESSION_RING, FlightRecorder
from repro.stats.trace import TraceEvent


def ev(time, kind, **attrs):
    return TraceEvent(time, kind, attrs)


class TestRings:
    def test_events_keyed_by_peer_label(self):
        fr = FlightRecorder()
        fr.observe(ev(1.0, "nack.sent", peer="a"))
        fr.observe(ev(2.0, "nack.sent", peer="b"))
        fr.observe(ev(3.0, "pli.sent"))
        assert fr.peers == ["a", "b", SESSION_RING]
        assert fr.ring("a") == [{"time": 1.0, "kind": "nack.sent", "peer": "a"}]
        assert fr.ring(SESSION_RING)[0]["kind"] == "pli.sent"

    def test_ring_is_bounded(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.observe(ev(float(i), "x", peer="a"))
        ring = fr.ring("a")
        assert len(ring) == 3
        assert [r["time"] for r in ring] == [7.0, 8.0, 9.0]


class TestSentinels:
    def test_dump_fires_once_with_trigger_last(self):
        fr = FlightRecorder()
        fr.observe(ev(1.0, "nack.sent", peer="a", count=2))
        fr.observe(ev(2.0, "recovery.gave_up", peer="a", count=1))
        fr.observe(ev(3.0, "nack.sent", peer="a", count=1))

        assert len(fr.dumps) == 1
        dump = fr.dumps[0]
        assert dump["sentinel"] == "recovery.gave_up"
        assert dump["peer"] == "a"
        # triggering event last; later events are NOT in this dump
        assert dump["events"][-1]["kind"] == "recovery.gave_up"
        assert len(dump["events"]) == 2

    def test_attr_subset_match(self):
        fr = FlightRecorder()
        fr.observe(ev(1.0, "reassembly.dropped", reason="orphan"))
        assert fr.dumps == []  # only reason="expired" is a sentinel
        fr.observe(ev(2.0, "reassembly.dropped", reason="expired"))
        assert len(fr.dumps) == 1

    def test_every_default_sentinel_fires(self):
        fr = FlightRecorder()
        fr.observe(ev(1.0, "peer.quarantined", peer="a"))
        fr.observe(ev(2.0, "recovery.gave_up", peer="a"))
        fr.observe(ev(3.0, "reassembly.dropped", peer="a", reason="expired"))
        fr.observe(ev(4.0, "jitter.abandoned", peer="a", seq=9))
        assert [d["sentinel"] for d in fr.dumps] == [
            "peer.quarantined", "recovery.gave_up",
            "reassembly.dropped", "jitter.abandoned",
        ]
        assert fr.sentinels_seen == 4

    def test_max_dumps_bounds_memory(self):
        fr = FlightRecorder(max_dumps=2)
        for i in range(5):
            fr.observe(ev(float(i), "recovery.gave_up", peer="a"))
        assert len(fr.dumps) == 2
        assert fr.sentinels_seen == 5
        assert fr.dumps_dropped == 3

    def test_to_json_round_trips(self):
        fr = FlightRecorder()
        fr.observe(ev(1.0, "jitter.abandoned", peer="a", seq=4))
        doc = json.loads(fr.to_json())
        assert doc["dumps"][0]["sentinel"] == "jitter.abandoned"


class TestInstrumentationFeed:
    def test_events_flow_into_the_recorder(self):
        obs = Instrumentation()
        obs.event("nack.sent", peer="p1", count=1)
        obs.event("recovery.gave_up", peer="p1", count=1)
        assert len(obs.flight.dumps) == 1
        assert obs.flight.dumps[0]["events"][-1]["kind"] == "recovery.gave_up"

    def test_scoped_views_share_the_recorder(self):
        obs = Instrumentation()
        scoped = obs.scoped(peer="p2")
        scoped.event("jitter.abandoned", seq=3)
        assert obs.flight.dumps[0]["peer"] == "p2"
