"""Every shipped example must run to completion and report success.

Examples are part of the public API surface; this guard runs each one
in a subprocess and checks both the exit code and the success markers
it prints.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, substrings that must appear, substrings that must NOT appear)
CASES = [
    (
        "quickstart.py",
        ["pixel-exact convergence: True", "still pixel-exact: True"],
        ["False"],
    ),
    (
        "collaborative_editing.py",
        ["final convergence: {'alice': True, 'bob': True, 'carol': True}"],
        [],
    ),
    (
        "lossy_network.py",
        ["early converged: True", "converged: True"],
        ["converged: False", "converged=False"],
    ),
    (
        "traced_lossy_network.py",
        ["converged: True", "complete causal chain: True"],
        ["converged: False", "complete causal chain: False",
         "recovered updates traced: 0"],
    ),
    (
        "remote_desktop_tcp.py",
        ["editor window pixel-exact: True", "photo index at AH: 1"],
        [],
    ),
    (
        "multicast_classroom.py",
        ["barbara converged: True"],
        ["converged=False"],
    ),
    (
        "session_server.py",
        ["hosting 8 sessions", "converged rooms: 8/8",
         "sessions remaining: 0"],
        [],
    ),
]


@pytest.mark.parametrize(
    "script,expect,forbid", CASES, ids=[c[0] for c in CASES]
)
def test_example_runs(script, expect, forbid):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example: {path}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in expect:
        assert marker in result.stdout, (
            f"{script}: expected {marker!r} in output:\n{result.stdout}"
        )
    for marker in forbid:
        assert marker not in result.stdout, (
            f"{script}: unexpected {marker!r} in output:\n{result.stdout}"
        )
