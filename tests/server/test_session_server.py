"""Join-code lifecycle on the asyncio SessionServer.

Covers the satellite checklist: duplicate joins, unknown codes,
BYE-during-join races, and registry cleanup after the last participant
leaves — plus the media path (convergence, HIP return) and the obs
threading (per-session labels, server.sessions snapshot).
"""

import asyncio

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.obs import Instrumentation
from repro.sharing.config import SharingConfig
from repro.sharing.server import (
    DuplicateParticipant,
    JoinFailed,
    SessionClosed,
    SessionServer,
    SessionState,
    UnknownJoinCode,
)
from repro.surface.geometry import Rect


def run(coro):
    return asyncio.run(coro)


def small_config():
    return SharingConfig(adaptive_codec=False)


async def hosted_editor(server, **kwargs):
    """Host one small session with a text editor; returns (code, editor)."""
    code = server.host(
        screen_width=320, screen_height=240, config=small_config(), **kwargs
    )
    session = server.session(code)
    window = session.ah.windows.create_window(Rect(10, 10, 160, 120))
    editor = TextEditorApp(window)
    session.ah.apps.attach(editor)
    return code, editor


class TestJoinLifecycle:
    def test_join_unknown_code_raises(self):
        async def scenario():
            async with SessionServer() as server:
                with pytest.raises(UnknownJoinCode):
                    await server.join("ZZZZZZ", "alice")
        run(scenario())

    def test_join_establishes_media_and_converges(self):
        async def scenario():
            async with SessionServer() as server:
                code, editor = await hosted_editor(server)
                session = server.session(code)
                joined = await server.join(code, "alice")
                editor.type_text("hello through the front door")
                await server.until(
                    lambda: joined.participant.converged_with(
                        session.ah.windows
                    ),
                    timeout=20,
                )
                assert "alice" in session.core.active_calls()
                assert "alice" in session.ah.sessions
        run(scenario())

    def test_duplicate_join_rejected_while_first_is_live(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                await server.join(code, "alice")
                with pytest.raises(DuplicateParticipant):
                    await server.join(code, "alice")
        run(scenario())

    def test_same_name_can_rejoin_after_leaving(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(
                    server, close_when_empty=False
                )
                first = await server.join(code, "alice")
                await first.leave()
                await server.until(
                    lambda: "alice" not in server.session(code).ah.sessions,
                    timeout=10,
                )
                second = await server.join(code, "alice")
                assert second.participant is not None
        run(scenario())

    def test_udp_preference_negotiates_datagram_path(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                await server.join(code, "alice", prefer_transport="udp")
                session = server.session(code)
                assert not session.ah.sessions["alice"].transport.reliable
        run(scenario())

    def test_join_timeout_cleans_up_the_half_open_call(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                session = server.session(code)
                # Break the handshake: the peer never answers.
                with pytest.raises(JoinFailed) as excinfo:
                    joining = asyncio.ensure_future(
                        server.join(code, "mute", timeout=0.2)
                    )
                    await asyncio.sleep(0)  # let join() register the call
                    peer = session.peers.get("mute")
                    assert peer is not None
                    peer.auto_answer = False
                    await joining
                assert "timeout" in excinfo.value.reason
                # The half-open call must not leak.
                assert session.core.call_for("mute") is None
                assert "mute" not in session.peers
                # And the session is still usable.
                ok = await server.join(code, "speaks")
                assert ok.participant is not None
        run(scenario())


class TestByeDuringJoinRaces:
    def test_session_closed_while_join_in_flight(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                session = server.session(code)
                session.peers  # touch before the race

                async def close_soon():
                    await asyncio.sleep(0)
                    server.close_session(code)

                join_task = asyncio.ensure_future(
                    server.join(code, "alice", timeout=5)
                )
                # Suppress the answer so the close always wins the race.
                await asyncio.sleep(0)
                if "alice" in session.peers:
                    session.peers["alice"].auto_answer = False
                await close_soon()
                with pytest.raises((JoinFailed, SessionClosed)):
                    await join_task
                assert session.state is SessionState.CLOSED
                with pytest.raises(UnknownJoinCode):
                    server.session(code)
        run(scenario())

    def test_join_after_close_raises_unknown_code(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                server.close_session(code)
                with pytest.raises(UnknownJoinCode):
                    await server.join(code, "late")
        run(scenario())

    def test_host_bye_tears_down_established_participant(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(
                    server, close_when_empty=False
                )
                session = server.session(code)
                joined = await server.join(code, "alice")
                assert joined.participant is not None
                session.core.hang_up("alice")
                await server.until(
                    lambda: "alice" not in session.ah.sessions, timeout=10
                )
                assert session.core.active_calls() == []
                # Session stays hosted (close_when_empty=False).
                assert server.session(code) is session
        run(scenario())


class TestRegistryCleanup:
    def test_last_leave_closes_and_unregisters_the_session(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                a = await server.join(code, "alice")
                b = await server.join(code, "bob")
                await a.leave()
                await asyncio.sleep(0)
                assert code in server.registry  # bob still there
                await b.leave()
                await server.until(
                    lambda: len(server.registry) == 0, timeout=10
                )
                with pytest.raises(UnknownJoinCode):
                    server.session(code)
        run(scenario())

    def test_leave_is_idempotent(self):
        async def scenario():
            async with SessionServer() as server:
                code, _editor = await hosted_editor(server)
                joined = await server.join(code, "alice")
                await joined.leave()
                await joined.leave()  # second leave: no error
                await server.leave("GONE42", "nobody")  # unknown code: no-op
        run(scenario())

    def test_server_stop_closes_every_session(self):
        async def scenario():
            server = SessionServer()
            await server.start()
            codes = [server.host(config=small_config(),
                                 screen_width=320, screen_height=240)
                     for _ in range(5)]
            assert len(server.registry) == 5
            await server.stop()
            assert len(server.registry) == 0
            for code in codes:
                with pytest.raises(UnknownJoinCode):
                    server.session(code)
        run(scenario())

    def test_explicit_room_codes_survive_empty(self):
        async def scenario():
            async with SessionServer() as server:
                code = server.host(code="room-42", config=small_config(),
                                   screen_width=320, screen_height=240,
                                   close_when_empty=False)
                assert code == "ROOM42"
                joined = await server.join("room 42", "alice")
                await joined.leave()
                await asyncio.sleep(0)
                assert "ROOM42" in server.registry
        run(scenario())


class TestObservability:
    def test_per_session_labels_and_snapshot(self):
        async def scenario():
            obs = Instrumentation()
            async with SessionServer(obs=obs) as server:
                code_a, editor_a = await hosted_editor(server)
                code_b, _editor_b = await hosted_editor(server)
                await server.join(code_a, "alice")
                await server.join(code_b, "bob")
                editor_a.type_text("traffic")
                target = server.clock.now() + 0.5
                await server.until(lambda: server.clock.now() >= target)
                snap = server.sessions()
                assert set(snap) == {code_a, code_b}
                assert snap[code_a]["established"] == ["alice"]
                assert snap[code_b]["established"] == ["bob"]
                assert snap[code_a]["bytes_sent"] > 0
                # Metrics are labelled per session.
                per_a = obs.registry.total(
                    "scheduler.packets_sent", session=code_a
                )
                per_b = obs.registry.total(
                    "scheduler.packets_sent", session=code_b
                )
                assert per_a > 0 and per_b > 0
                assert obs.registry.total("server.sessions") == 2
                assert obs.registry.total("session.joins") == 2
                # Join/leave trace stages were recorded.
                kinds = {e.kind for e in obs.trace}
                assert "session.invite" in kinds
                assert "session.established" in kinds
                assert "server.join" in kinds
        run(scenario())
