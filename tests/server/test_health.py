"""Server-tier robustness: overload shedding, supervision, liveness.

The contract added by the health subsystem:

* **admission** — past ``max_sessions``/``max_participants`` new work
  is refused with :class:`ServerOverloaded`; existing sessions are
  never touched;
* **degradation** — between ``degrade_at`` and full capacity, hosted
  relays' rate tiers are scaled down (and restored when load falls);
* **supervision** — a crashing session pump restarts with backoff,
  and a persistently-crashing one closes its session cleanly instead
  of wedging;
* **eviction** — a joined participant that goes dead-silent is evicted
  by the AH's liveness tracker and its call reclaimed;
* **until()** — timeouts are measured on the server's virtual clock.
"""

import asyncio
import time

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.health import LivenessConfig, OverloadConfig, RestartPolicy
from repro.sharing.config import SharingConfig
from repro.sharing.server import (
    ServerOverloaded,
    SessionServer,
    SessionState,
)
from repro.surface.geometry import Rect


def run(coro):
    return asyncio.run(coro)


def small_config():
    return SharingConfig(adaptive_codec=False)


async def hosted_editor(server, **kwargs):
    code = server.host(
        screen_width=320, screen_height=240, config=small_config(),
        close_when_empty=False, **kwargs
    )
    session = server.session(code)
    window = session.ah.windows.create_window(Rect(10, 10, 160, 120))
    editor = TextEditorApp(window)
    session.ah.apps.attach(editor)
    return code, editor


class TestAdmission:
    def test_session_cap_refuses_the_next_host(self):
        async def scenario():
            async with SessionServer(
                overload=OverloadConfig(max_sessions=2)
            ) as server:
                await hosted_editor(server)
                await hosted_editor(server)
                with pytest.raises(ServerOverloaded) as err:
                    await hosted_editor(server)
                assert err.value.limit == 2
                assert server.health()["sessions_shed"] == 1
                assert len(server.codes()) == 2
        run(scenario())

    def test_relays_count_against_the_session_cap(self):
        async def scenario():
            async with SessionServer(
                overload=OverloadConfig(max_sessions=2)
            ) as server:
                code, _ = await hosted_editor(server)
                server.host_relay(code)
                with pytest.raises(ServerOverloaded):
                    server.host_relay(code)
        run(scenario())

    def test_participant_cap_sheds_the_join(self):
        async def scenario():
            async with SessionServer(
                overload=OverloadConfig(max_participants=1)
            ) as server:
                code, _ = await hosted_editor(server)
                await server.join(code, "alice")
                with pytest.raises(ServerOverloaded):
                    await server.join(code, "bob")
                assert server.health()["joins_shed"] == 1
                # The admitted participant was never disturbed.
                assert "alice" in server.session(code).ah.sessions
        run(scenario())


class TestDegradation:
    def test_ladder_scales_relay_tiers_and_restores(self):
        async def scenario():
            async with SessionServer(
                overload=OverloadConfig(
                    max_participants=4, degrade_at=0.5,
                    degrade_rate_factor=0.5,
                )
            ) as server:
                code, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                node = server.relay(relay_code).relay
                server.join_relay(relay_code, "v1", rate_bps=200_000)
                assert server.load_level == "ok"
                assert node.rate_scale == 1.0
                server.join_relay(relay_code, "v2")
                assert server.load_level == "degraded"
                assert node.rate_scale == 0.5
                assert (
                    node.downstreams["v1"].limiter.rate_bps == 100_000
                )
                # Nobody was disconnected, and joins still succeed.
                server.join_relay(relay_code, "v3")
                assert node.downstream_count == 3
                # Load falling back restores the configured tiers.
                server.leave_relay(relay_code, "v2")
                server.leave_relay(relay_code, "v3")
                assert server.load_level == "ok"
                assert node.rate_scale == 1.0
                assert (
                    node.downstreams["v1"].limiter.rate_bps == 200_000
                )
        run(scenario())

    def test_health_snapshot_reports_the_ladder(self):
        async def scenario():
            async with SessionServer(
                overload=OverloadConfig(max_participants=2, degrade_at=0.5)
            ) as server:
                code, _ = await hosted_editor(server)
                await server.join(code, "alice")
                row = server.health()
                assert row["load_level"] == "degraded"
                assert row["participants"] == 1
                assert row["max_participants"] == 2
        run(scenario())


class TestSupervision:
    def test_transient_crash_restarts_the_pump(self):
        async def scenario():
            async with SessionServer(
                restart_policy=RestartPolicy(
                    initial_backoff=0.0, max_restarts=3
                )
            ) as server:
                code, editor = await hosted_editor(server)
                session = server.session(code)
                real = session.core.media_round
                crashes = [0]

                def flaky(dt):
                    if crashes[0] < 2:
                        crashes[0] += 1
                        raise RuntimeError("transient")
                    return real(dt)

                session.core.media_round = flaky
                joined = await server.join(code, "alice")
                editor.type_text("survives a flaky pump")
                await server.until(
                    lambda: joined.participant.converged_with(
                        session.ah.windows
                    ),
                    timeout=20,
                )
                assert server.health()["supervisor"]["restarts"] >= 2
                assert server.health()["supervisor"]["give_ups"] == 0
                assert session.state is SessionState.OPEN
        run(scenario())

    def test_persistent_crash_gives_up_and_closes_the_session(self):
        async def scenario():
            async with SessionServer(
                restart_policy=RestartPolicy(
                    initial_backoff=0.0, max_restarts=1
                )
            ) as server:
                code, _ = await hosted_editor(server)
                session = server.session(code)

                def broken(dt):
                    raise RuntimeError("persistent")

                session.core.media_round = broken
                await asyncio.wait_for(session.closed_event.wait(), 10.0)
                assert session.state is SessionState.CLOSED
                assert code not in server.codes()
                assert server.health()["supervisor"]["give_ups"] == 1
        run(scenario())

    def test_supervise_false_disables_the_layer(self):
        async def scenario():
            async with SessionServer(supervise=False) as server:
                await hosted_editor(server)
                assert "supervisor" not in server.health()
        run(scenario())


class TestEviction:
    def test_dead_silent_participant_is_evicted(self):
        async def scenario():
            async with SessionServer(
                liveness=LivenessConfig(suspect_after=0.5, dead_after=1.5)
            ) as server:
                code, editor = await hosted_editor(server)
                session = server.session(code)
                joined = await server.join(code, "alice")
                editor.type_text("warm-up")
                await server.until(
                    lambda: joined.participant.converged_with(
                        session.ah.windows
                    ),
                    timeout=20,
                )
                # Kill the peer without a BYE: its pump goes silent.
                call = session.core.call_for("alice")
                call.participant.process_incoming = lambda: 0
                await server.until(
                    lambda: "alice" not in session.ah.sessions,
                    timeout=20,
                )
                assert "alice" not in session.core.call_names()
                assert session.ah.participants_evicted == 1
                assert session.snapshot()["liveness"]["deaths"] == 1
        run(scenario())

    def test_no_liveness_config_keeps_the_historical_behaviour(self):
        async def scenario():
            async with SessionServer() as server:
                code, _ = await hosted_editor(server)
                assert server.session(code).ah.liveness is None
                assert "liveness" not in server.session(code).snapshot()
        run(scenario())


class TestUntilClock:
    def test_timeout_is_virtual_seconds_not_wall(self):
        async def scenario():
            async with SessionServer(tick=0.01) as server:
                await hosted_editor(server)
                t0_wall = time.monotonic()
                t0_virtual = server.clock.now()
                with pytest.raises(asyncio.TimeoutError):
                    await server.until(lambda: False, timeout=5.0)
                assert server.clock.now() - t0_virtual >= 5.0
                # Virtual seconds pump far faster than wall seconds.
                assert time.monotonic() - t0_wall < 30.0
        run(scenario())
