"""SessionRegistry: join-code issue/normalise/register/remove semantics."""

import random

import pytest

from repro.obs import Instrumentation
from repro.sharing.server import (
    CODE_ALPHABET,
    DuplicateJoinCode,
    SessionRegistry,
    UnknownJoinCode,
)


class TestCodes:
    def test_issue_code_uses_unambiguous_alphabet(self):
        registry = SessionRegistry(rng=random.Random(1))
        for _ in range(50):
            code = registry.issue_code()
            assert len(code) == 6
            assert all(c in CODE_ALPHABET for c in code)
            for forbidden in "01OIL":
                assert forbidden not in code

    def test_issue_code_is_deterministic_with_seeded_rng(self):
        a = SessionRegistry(rng=random.Random(7))
        b = SessionRegistry(rng=random.Random(7))
        assert [a.issue_code() for _ in range(5)] == [
            b.issue_code() for _ in range(5)
        ]

    def test_issued_codes_avoid_live_collisions(self):
        registry = SessionRegistry(rng=random.Random(3), code_length=4)
        seen = set()
        for _ in range(200):
            code = registry.register(object())
            assert code not in seen
            seen.add(code)

    def test_normalise_tolerates_case_dashes_spaces(self):
        assert SessionRegistry.normalise("ab-cd 3f") == "ABCD3F"

    def test_short_code_length_rejected(self):
        with pytest.raises(ValueError):
            SessionRegistry(code_length=3)


class TestRegistration:
    def test_register_lookup_remove_roundtrip(self):
        registry = SessionRegistry(rng=random.Random(5))
        session = object()
        code = registry.register(session)
        assert registry.lookup(code) is session
        assert registry.lookup(code.lower()) is session  # case-insensitive
        assert code in registry
        registry.remove(code)
        assert len(registry) == 0
        with pytest.raises(UnknownJoinCode):
            registry.lookup(code)

    def test_explicit_code_must_be_unique(self):
        registry = SessionRegistry(rng=random.Random(5))
        registry.register(object(), "ROOM42")
        with pytest.raises(DuplicateJoinCode):
            registry.register(object(), "room-42")  # normalises to the same

    def test_unknown_code_error_carries_the_code(self):
        registry = SessionRegistry(rng=random.Random(5))
        with pytest.raises(UnknownJoinCode) as excinfo:
            registry.lookup("NOPE99")
        assert excinfo.value.code == "NOPE99"

    def test_remove_unknown_code_is_noop(self):
        registry = SessionRegistry(rng=random.Random(5))
        registry.remove("NEVER1")  # must not raise: BYE races hit this

    def test_empty_explicit_code_rejected(self):
        registry = SessionRegistry(rng=random.Random(5))
        with pytest.raises(ValueError):
            registry.register(object(), "  -")

    def test_pinned_zero_and_oh_meet_at_the_same_key(self):
        # A room pinned with "0" must be reachable by a user who
        # transcribed it as "O" — the unambiguous-alphabet guarantee.
        registry = SessionRegistry(rng=random.Random(5))
        session = object()
        registry.register(session, "HELL0")
        assert registry.lookup("HELLO") is session
        assert registry.lookup("hell0") is session
        with pytest.raises(DuplicateJoinCode):
            registry.register(object(), "HELLO")

    def test_pinned_one_ell_and_eye_meet_at_the_same_key(self):
        registry = SessionRegistry(rng=random.Random(5))
        session = object()
        registry.register(session, "MA1N22")
        assert registry.lookup("MAIN22") is session
        assert registry.lookup("MAlN22") is session  # lowercase L
        assert registry.lookup("MALN22") is session

    def test_pinned_code_with_unmappable_characters_rejected(self):
        registry = SessionRegistry(rng=random.Random(5))
        for bad in ("ROOM*2", "CAFÉ22", "A_B_C_"):
            with pytest.raises(ValueError):
                registry.register(object(), bad)

    def test_pinned_code_empty_after_normalise_rejected(self):
        registry = SessionRegistry(rng=random.Random(5))
        with pytest.raises(ValueError):
            registry.register(object(), "--- ---")

    def test_registry_feeds_server_sessions_gauge(self):
        obs = Instrumentation()
        registry = SessionRegistry(rng=random.Random(5), obs=obs)
        code_a = registry.register(object())
        registry.register(object())
        assert obs.registry.total("server.sessions") == 2
        registry.remove(code_a)
        assert obs.registry.total("server.sessions") == 1
