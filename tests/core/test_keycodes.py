"""Tests for the Java virtual keycode table (section 4.2 / 6.6)."""

import pytest

from repro.core import keycodes


class TestKnownValues:
    def test_f1_is_0x70(self):
        """The draft's worked example: 'int VK_F1 = 0x70;'."""
        assert keycodes.VK_F1 == 0x70

    def test_letters_match_ascii_uppercase(self):
        assert keycodes.VK_A == ord("A")
        assert keycodes.VK_Z == ord("Z")

    def test_digits_match_ascii(self):
        assert keycodes.VK_0 == ord("0")
        assert keycodes.VK_9 == ord("9")

    def test_control_keys(self):
        assert keycodes.VK_ENTER == 0x0A
        assert keycodes.VK_ESCAPE == 0x1B
        assert keycodes.VK_SPACE == 0x20
        assert keycodes.VK_DELETE == 0x7F

    def test_function_keys_contiguous(self):
        assert keycodes.VK_F12 - keycodes.VK_F1 == 11


class TestLookup:
    def test_name_lookup(self):
        assert keycodes.keycode_name(0x70) == "VK_F1"
        assert keycodes.keycode_name(keycodes.VK_ENTER) == "VK_ENTER"

    def test_unknown_name(self):
        assert "0x3a" in keycodes.keycode_name(0x3A)

    def test_registry_covers_letters(self):
        for ch in "ABCDEFGHIJKLMNOPQRSTUVWXYZ":
            assert f"VK_{ch}" in keycodes.KEYCODES

    def test_is_modifier(self):
        assert keycodes.is_modifier(keycodes.VK_SHIFT)
        assert keycodes.is_modifier(keycodes.VK_CONTROL)
        assert not keycodes.is_modifier(keycodes.VK_A)


class TestCharConversion:
    def test_letters_roundtrip(self):
        for ch in "azAZ":
            code = keycodes.keycode_for_char(ch)
            assert code is not None
            back = keycodes.char_for_keycode(code, shift=ch.isupper())
            assert back == ch

    def test_digits_roundtrip(self):
        for ch in "0123456789":
            code = keycodes.keycode_for_char(ch)
            assert keycodes.char_for_keycode(code) == ch

    def test_shifted_digits(self):
        assert keycodes.char_for_keycode(keycodes.VK_1, shift=True) == "!"
        assert keycodes.char_for_keycode(keycodes.VK_9, shift=True) == "("

    def test_punctuation(self):
        code = keycodes.keycode_for_char(";")
        assert keycodes.char_for_keycode(code) == ";"
        assert keycodes.char_for_keycode(code, shift=True) == ":"

    def test_whitespace(self):
        assert keycodes.keycode_for_char("\n") == keycodes.VK_ENTER
        assert keycodes.char_for_keycode(keycodes.VK_SPACE) == " "

    def test_non_ascii_has_no_keycode(self):
        assert keycodes.keycode_for_char("é") is None

    def test_modifier_has_no_char(self):
        assert keycodes.char_for_keycode(keycodes.VK_SHIFT) is None

    def test_numpad_digits(self):
        assert keycodes.char_for_keycode(keycodes.VK_NUMPAD7) == "7"

    def test_multichar_rejected(self):
        with pytest.raises(ValueError):
            keycodes.keycode_for_char("ab")
