"""Golden wire-format bytes.

Pins the exact encodings shown in docs/PROTOCOL.md.  Any change to
these byte strings is a wire-compatibility break and must be deliberate.
"""

from repro.bfcp import STATUS_GRANTED, floor_request_status
from repro.core import (
    KeyTyped,
    MousePressed,
    MouseWheelMoved,
    MoveRectangle,
    RegionUpdate,
    WindowManagerInfo,
    WindowRecord,
    fragment_update,
    MSG_REGION_UPDATE,
)
from repro.rtp.feedback import PictureLossIndication, nacks_for


def h(text: str) -> bytes:
    return bytes.fromhex(text.replace(" ", "").replace("\n", ""))


class TestGoldenRemoting:
    def test_window_manager_info(self):
        message = WindowManagerInfo(
            (WindowRecord(1, 1, 220, 150, 350, 450),)
        ).encode()
        assert message == h(
            "01 00 00 00"
            "00 01 01 00"
            "00 00 00 dc"
            "00 00 00 96"
            "00 00 01 5e"
            "00 00 01 c2"
        )

    def test_region_update_single(self):
        message = RegionUpdate(1, 220, 150, 96, b"\x89PNG...").encode_single()
        assert message == h(
            "02 e0 00 01 00 00 00 dc 00 00 00 96 89 50 4e 47 2e 2e 2e"
        )

    def test_move_rectangle(self):
        message = MoveRectangle(1, 450, 400, 350, 284, 450, 384).encode()
        assert message == h(
            "03 00 00 01"
            "00 00 01 c2 00 00 01 90"
            "00 00 01 5e 00 00 01 1c"
            "00 00 01 c2 00 00 01 80"
        )

    def test_fragment_pair(self):
        frags = fragment_update(
            MSG_REGION_UPDATE, 1, 96, 220, 150, bytes(range(40)), 28
        )
        assert len(frags) == 2
        assert frags[0].payload == h(
            "02 e0 00 01 00 00 00 dc 00 00 00 96"
            "00 01 02 03 04 05 06 07 08 09 0a 0b 0c 0d 0e 0f"
        )
        assert not frags[0].marker
        assert frags[1].payload == h(
            "02 60 00 01"
            "10 11 12 13 14 15 16 17 18 19 1a 1b"
            "1c 1d 1e 1f 20 21 22 23 24 25 26 27"
        )
        assert frags[1].marker


class TestGoldenHip:
    def test_mouse_pressed(self):
        message = MousePressed(1, 1, 300, 200).encode()
        assert message == h("79 01 00 01 00 00 01 2c 00 00 00 c8")

    def test_wheel_twos_complement(self):
        message = MouseWheelMoved(1, 300, 200, -120).encode()
        assert message == h(
            "7c 00 00 01 00 00 01 2c 00 00 00 c8 ff ff ff 88"
        )

    def test_key_typed_utf8(self):
        message = KeyTyped(1, "Hi☃").encode()
        assert message == h("7f 00 00 01 48 69 e2 98 83")


class TestGoldenRtcp:
    def test_pli(self):
        message = PictureLossIndication(0x11111111, 0x22222222).encode()
        assert message == h("81 ce 00 02 11 11 11 11 22 22 22 22")

    def test_generic_nack(self):
        message = nacks_for(0x11111111, 0x22222222, [1000, 1001, 1003]).encode()
        assert message == h(
            "81 cd 00 03 11 11 11 11 22 22 22 22 03 e8 00 05"
        )


class TestGoldenBfcp:
    def test_floor_granted_with_hid_status(self):
        message = floor_request_status(
            1, 7, 12, 3, STATUS_GRANTED, hid_status=3
        ).encode()
        assert message == h(
            "20 04 00 03"
            "00 00 00 01"
            "00 07 00 0c"
            "07 04 00 03"
            "0b 04 03 00"
            "15 04 00 03"
        )
