"""Tests for the seven HIP messages (section 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.core.hip import (
    BUTTON_LEFT,
    BUTTON_MIDDLE,
    BUTTON_RIGHT,
    WHEEL_NOTCH,
    KeyPressed,
    KeyReleased,
    KeyTyped,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
    decode_hip,
    split_text_for_key_typed,
)
from repro.core.header import CommonHeader


class TestMouseButtons:
    def test_button_values(self):
        """Values 1, 2, 3 = left, right, middle (section 6.2)."""
        assert (BUTTON_LEFT, BUTTON_RIGHT, BUTTON_MIDDLE) == (1, 2, 3)

    def test_pressed_roundtrip(self):
        msg = MousePressed(window_id=1, button=BUTTON_LEFT, left=640, top=480)
        assert MousePressed.decode(msg.encode()) == msg

    def test_released_roundtrip(self):
        msg = MouseReleased(2, BUTTON_RIGHT, 10, 20)
        assert MouseReleased.decode(msg.encode()) == msg

    def test_button_in_parameter_byte(self):
        data = MousePressed(0, BUTTON_MIDDLE, 0, 0).encode()
        assert data[1] == BUTTON_MIDDLE

    def test_pressed_body_is_8_bytes(self):
        assert len(MousePressed(0, 1, 0, 0).encode()) == 12

    def test_type_mismatch_rejected(self):
        pressed = MousePressed(0, 1, 0, 0).encode()
        with pytest.raises(ProtocolError):
            MouseReleased.decode(pressed)

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            MousePressed.decode(MousePressed(0, 1, 0, 0).encode()[:-2])


class TestMouseMoved:
    def test_roundtrip(self):
        msg = MouseMoved(3, 111, 222)
        assert MouseMoved.decode(msg.encode()) == msg

    def test_parameter_zero(self):
        assert MouseMoved(0, 1, 2).encode()[1] == 0


class TestMouseWheel:
    def test_roundtrip_positive(self):
        msg = MouseWheelMoved(1, 5, 6, WHEEL_NOTCH * 2)
        assert MouseWheelMoved.decode(msg.encode()) == msg

    def test_roundtrip_negative_twos_complement(self):
        """Negative distances use 2's complement (section 6.5)."""
        msg = MouseWheelMoved(1, 5, 6, -WHEEL_NOTCH)
        data = msg.encode()
        assert data[-4:] == (-120).to_bytes(4, "big", signed=True)
        assert MouseWheelMoved.decode(data).distance == -120

    def test_notches(self):
        assert MouseWheelMoved(0, 0, 0, 240).notches == 2.0
        assert MouseWheelMoved(0, 0, 0, -60).notches == -0.5  # smooth wheel

    def test_distance_bounds(self):
        with pytest.raises(ProtocolError):
            MouseWheelMoved(0, 0, 0, 2**31)


class TestKeys:
    def test_pressed_roundtrip(self):
        msg = KeyPressed(1, 0x70)  # VK_F1
        assert KeyPressed.decode(msg.encode()) == msg

    def test_released_roundtrip(self):
        msg = KeyReleased(1, 0x41)
        assert KeyReleased.decode(msg.encode()) == msg

    def test_keycode_is_32_bits(self):
        data = KeyPressed(0, 0x12345678).encode()
        assert len(data) == 8
        assert data[4:] == bytes([0x12, 0x34, 0x56, 0x78])

    def test_released_without_pressed_is_fine(self):
        """'A KeyReleased event for a key without a prior KeyPressed
        event for this key is acceptable' — both decode independently."""
        assert KeyReleased.decode(KeyReleased(0, 65).encode()).keycode == 65


class TestKeyTyped:
    def test_ascii_roundtrip(self):
        msg = KeyTyped(1, "hello world")
        assert KeyTyped.decode(msg.encode()) == msg

    def test_unicode_roundtrip(self):
        msg = KeyTyped(1, "héllo wörld — ünïcode ☃")
        assert KeyTyped.decode(msg.encode()) == msg

    def test_no_padding(self):
        """'There is no padding for the UTF-8 string.'"""
        assert len(KeyTyped(0, "abc").encode()) == 4 + 3

    def test_empty_string(self):
        assert KeyTyped.decode(KeyTyped(0, "").encode()).text == ""

    def test_invalid_utf8_rejected(self):
        payload = CommonHeader(127, 0, 0).encode() + b"\xff\xfe"
        with pytest.raises(ProtocolError):
            KeyTyped.decode(payload)


class TestSplitText:
    def test_short_text_one_message(self):
        msgs = split_text_for_key_typed(1, "short", 100)
        assert len(msgs) == 1
        assert msgs[0].text == "short"

    def test_long_text_splits(self):
        msgs = split_text_for_key_typed(1, "x" * 100, 24)
        assert len(msgs) > 1
        assert "".join(m.text for m in msgs) == "x" * 100
        for msg in msgs:
            assert len(msg.encode()) <= 24

    def test_never_splits_codepoint(self):
        text = "☃" * 30  # 3 bytes each
        msgs = split_text_for_key_typed(1, text, 14)  # 10-byte budget
        assert "".join(m.text for m in msgs) == text
        for msg in msgs:
            msg_bytes = msg.encode()[4:]
            msg_bytes.decode("utf-8")  # must be independently valid

    def test_empty_text_yields_one_message(self):
        msgs = split_text_for_key_typed(1, "", 100)
        assert len(msgs) == 1

    def test_budget_too_small(self):
        with pytest.raises(ProtocolError):
            split_text_for_key_typed(1, "x", 5)

    @given(st.text(max_size=200), st.integers(10, 60))
    def test_split_property(self, text, max_payload):
        msgs = split_text_for_key_typed(1, text, max_payload)
        assert "".join(m.text for m in msgs) == text
        for msg in msgs:
            assert len(msg.encode()) <= max_payload
            # Every fragment is independently decodable.
            assert KeyTyped.decode(msg.encode()).text == msg.text


class TestDecodeHip:
    @pytest.mark.parametrize(
        "message",
        [
            MousePressed(1, 1, 2, 3),
            MouseReleased(1, 2, 2, 3),
            MouseMoved(1, 2, 3),
            MouseWheelMoved(1, 2, 3, -120),
            KeyPressed(1, 65),
            KeyReleased(1, 65),
            KeyTyped(1, "text"),
        ],
    )
    def test_dispatch(self, message):
        assert decode_hip(message.encode()) == message

    def test_unknown_type_returns_none(self):
        """Participants MAY ignore unknown registered types."""
        payload = CommonHeader(200, 0, 0).encode() + b"\x00" * 8
        assert decode_hip(payload) is None

    def test_remoting_type_returns_none(self):
        payload = CommonHeader(2, 0x80 | 96, 0).encode() + b"\x00" * 8
        assert decode_hip(payload) is None
