"""Tests for Table 2 fragmentation and reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FragmentationError
from repro.core.fragmentation import (
    Fragment,
    FragmentType,
    UpdateReassembler,
    fragment_update,
)
from repro.core.header import unpack_update_parameter
from repro.core.registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE


def fragments_for(data: bytes, max_payload: int = 64) -> list[Fragment]:
    return fragment_update(MSG_REGION_UPDATE, 5, 96, 10, 20, data, max_payload)


class TestTable2Matrix:
    def test_table2_matrix(self):
        """The exact marker/FirstPacket truth table of Table 2."""
        assert FragmentType.from_bits(True, True) is FragmentType.NOT_FRAGMENTED
        assert FragmentType.from_bits(False, True) is FragmentType.START
        assert FragmentType.from_bits(False, False) is FragmentType.CONTINUATION
        assert FragmentType.from_bits(True, False) is FragmentType.END

    def test_bits_roundtrip(self):
        for fragment_type in FragmentType:
            marker, first = fragment_type.marker, fragment_type.first_packet
            assert FragmentType.from_bits(marker, first) is fragment_type


class TestFragmenter:
    def test_small_update_single_fragment(self):
        frags = fragments_for(b"tiny")
        assert len(frags) == 1
        assert frags[0].marker  # Not Fragmented: marker=1, F=1
        _, pt = unpack_update_parameter(frags[0].payload[1])
        assert pt == 96
        assert frags[0].payload[1] & 0x80

    def test_large_update_fragments(self):
        frags = fragments_for(bytes(500), max_payload=64)
        assert len(frags) > 1
        # Start: marker=0, F=1.
        assert not frags[0].marker and frags[0].payload[1] & 0x80
        # Middle: marker=0, F=0.
        for frag in frags[1:-1]:
            assert not frag.marker and not frag.payload[1] & 0x80
        # End: marker=1, F=0.
        assert frags[-1].marker and not frags[-1].payload[1] & 0x80

    def test_payload_cap_respected(self):
        for frag in fragments_for(bytes(3000), max_payload=100):
            assert frag.size <= 100

    def test_coords_only_in_first(self):
        frags = fragments_for(bytes(300), max_payload=64)
        assert len(frags[0].payload) >= 12  # common + specific headers
        # Continuations: 4-byte common header + data only.
        assert frags[1].payload[4:] != b""

    def test_max_payload_too_small(self):
        with pytest.raises(FragmentationError):
            fragments_for(b"x", max_payload=12)

    def test_empty_data_single_fragment(self):
        frags = fragments_for(b"")
        assert len(frags) == 1
        assert frags[0].marker


class TestReassembler:
    def test_single_fragment(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(b"payload")
        update = reassembler.push(frags[0].payload, frags[0].marker, 100)
        assert update is not None
        assert update.data == b"payload"
        assert (update.left, update.top) == (10, 20)
        assert update.window_id == 5
        assert update.content_pt == 96
        assert update.fragment_count == 1

    def test_multi_fragment(self):
        reassembler = UpdateReassembler()
        data = bytes(range(256)) * 5
        frags = fragments_for(data, max_payload=100)
        result = None
        for frag in frags:
            result = reassembler.push(frag.payload, frag.marker, 777)
        assert result is not None
        assert result.data == data
        assert result.fragment_count == len(frags)

    def test_lost_end_drops_partial(self):
        reassembler = UpdateReassembler()
        first = fragments_for(bytes(300), max_payload=64)
        second = fragments_for(b"next", max_payload=64)
        # Deliver start of first update, then the second (new timestamp).
        reassembler.push(first[0].payload, first[0].marker, 100)
        result = reassembler.push(second[0].payload, second[0].marker, 200)
        assert result is not None
        assert result.data == b"next"
        assert reassembler.updates_dropped == 1

    def test_orphan_continuation_dropped(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(bytes(300), max_payload=64)
        # Start was lost; continuation arrives alone.
        assert reassembler.push(frags[1].payload, frags[1].marker, 100) is None
        assert reassembler.updates_dropped == 1

    def test_window_change_mid_update_drops(self):
        reassembler = UpdateReassembler()
        a = fragment_update(MSG_REGION_UPDATE, 1, 96, 0, 0, bytes(200), 64)
        b = fragment_update(MSG_REGION_UPDATE, 2, 96, 0, 0, bytes(200), 64)
        reassembler.push(a[0].payload, a[0].marker, 50)
        assert reassembler.push(b[1].payload, b[1].marker, 50) is None
        assert reassembler.updates_dropped == 1

    def test_pointer_reassembler(self):
        reassembler = UpdateReassembler(MSG_MOUSE_POINTER_INFO)
        frags = fragment_update(
            MSG_MOUSE_POINTER_INFO, 0, 96, 3, 4, bytes(500), 64
        )
        result = None
        for frag in frags:
            result = reassembler.push(frag.payload, frag.marker, 9)
        assert result is not None and result.data == bytes(500)

    def test_invalid_message_type(self):
        with pytest.raises(FragmentationError):
            UpdateReassembler(1)

    def test_drops_counted_by_reason(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[1].payload, frags[1].marker, 100)
        reassembler.push(frags[0].payload, frags[0].marker, 100)
        reassembler.push(frags[0].payload, frags[0].marker, 200)
        assert reassembler.drops_by_reason["orphan"] == 1
        assert reassembler.drops_by_reason["timestamp_change"] == 1
        assert reassembler.updates_dropped == 2

    @given(
        data=st.binary(min_size=0, max_size=2000),
        max_payload=st.integers(16, 300),
        timestamp=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, data, max_payload, timestamp):
        frags = fragment_update(
            MSG_REGION_UPDATE, 9, 42, 100, 200, data, max_payload
        )
        reassembler = UpdateReassembler()
        results = [
            reassembler.push(f.payload, f.marker, timestamp) for f in frags
        ]
        assert all(r is None for r in results[:-1])
        final = results[-1]
        assert final is not None
        assert final.data == data
        assert (final.left, final.top) == (100, 200)
        assert final.content_pt == 42


class TestSequenceContinuity:
    """Fragments of one update occupy consecutive sequence numbers; a
    gap inside an open partial means its missing fragment may share a
    timestamp with what follows — the partial must be dropped, never
    spliced."""

    def test_consecutive_seqs_reassemble(self):
        reassembler = UpdateReassembler()
        data = bytes(range(256))
        frags = fragments_for(data, max_payload=64)
        result = None
        for seq, frag in enumerate(frags, start=100):
            result = reassembler.push(
                frag.payload, frag.marker, 7, sequence_number=seq
            )
        assert result is not None and result.data == data

    def test_gap_drops_partial(self):
        """Same-timestamp splice: update A loses its END, update B (same
        frame, same timestamp, same window) loses its START.  Without
        the continuity check B's continuation extends A's partial."""
        reassembler = UpdateReassembler()
        a = fragments_for(bytes([1]) * 300, max_payload=64)
        b = fragments_for(bytes([2]) * 300, max_payload=64)
        seq = 10
        for frag in a[:-1]:  # END of A lost
            assert reassembler.push(
                frag.payload, frag.marker, 55, sequence_number=seq
            ) is None
            seq += 1
        seq += 1  # A's END consumed this sequence number on the wire
        seq += 1  # B's START lost too
        result = reassembler.push(
            b[1].payload, b[1].marker, 55, sequence_number=seq
        )
        assert result is None
        assert reassembler.drops_by_reason["sequence_gap"] == 1
        # The incoming continuation is then judged alone: an orphan.
        assert reassembler.drops_by_reason["orphan"] == 1
        assert not reassembler.has_partial

    def test_wire_wraparound_is_continuous(self):
        reassembler = UpdateReassembler()
        data = bytes(200)
        frags = fragments_for(data, max_payload=64)
        assert len(frags) >= 3
        seqs = [(0xFFFF + i) & 0xFFFF for i in range(len(frags))]
        result = None
        for seq, frag in zip(seqs, frags):
            result = reassembler.push(
                frag.payload, frag.marker, 9, sequence_number=seq
            )
        assert result is not None and result.data == data

    def test_without_seq_no_continuity_check(self):
        """Callers that cannot supply sequence numbers keep the old
        timestamp-only behaviour."""
        reassembler = UpdateReassembler()
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1)
        result = reassembler.push(frags[-1].payload, frags[-1].marker, 1)
        assert result is not None
        assert reassembler.updates_dropped == 0


class TestPartialExpiry:
    def make(self, max_age=2.0):
        from repro.rtp.clock import SimulatedClock

        clock = SimulatedClock()
        reassembler = UpdateReassembler(
            now=clock.now, max_partial_age=max_age
        )
        return clock, reassembler

    def test_stalled_partial_expires(self):
        """A lost END on an idle stream cannot buffer a partial forever."""
        clock, reassembler = self.make(max_age=2.0)
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1,
                         sequence_number=5)
        clock.advance(2.5)
        assert reassembler.expire()
        assert not reassembler.has_partial
        assert reassembler.drops_by_reason["expired"] == 1

    def test_fresh_partial_survives_expire(self):
        clock, reassembler = self.make(max_age=2.0)
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1,
                         sequence_number=5)
        clock.advance(1.0)
        assert not reassembler.expire()
        assert reassembler.has_partial

    def test_push_applies_expiry_first(self):
        """A late END for an expired partial is an orphan, not a splice."""
        clock, reassembler = self.make(max_age=1.0)
        frags = fragments_for(bytes(300), max_payload=64)
        for seq, frag in enumerate(frags[:-1], start=10):
            reassembler.push(frag.payload, frag.marker, 1,
                             sequence_number=seq)
        clock.advance(5.0)
        result = reassembler.push(
            frags[-1].payload, frags[-1].marker, 1,
            sequence_number=10 + len(frags) - 1,
        )
        assert result is None
        assert reassembler.drops_by_reason["expired"] == 1
        assert reassembler.drops_by_reason["orphan"] == 1

    def test_expire_noop_without_clock(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1)
        assert not reassembler.expire()
        assert reassembler.has_partial

    def test_bad_max_age_rejected(self):
        from repro.rtp.clock import SimulatedClock

        with pytest.raises(FragmentationError):
            UpdateReassembler(now=SimulatedClock().now, max_partial_age=0)

    def test_drop_counters_reach_instrumentation(self):
        from repro.obs import Instrumentation
        from repro.rtp.clock import SimulatedClock

        clock = SimulatedClock()
        obs = Instrumentation(clock=clock.now)
        reassembler = UpdateReassembler(
            now=clock.now, max_partial_age=1.0, instrumentation=obs
        )
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1)
        clock.advance(2.0)
        reassembler.expire()
        snap = obs.snapshot()
        assert snap["counters"][
            "reassembly.updates_dropped{reason=expired}"
        ] == 1


class TestExpiryBeforeParse:
    def test_malformed_payload_still_expires_stale_partial(self):
        """expire() must run before payload parsing: a malformed packet
        (which raises out of push) must not leave an already-expired
        partial resident, where it would absorb later continuations."""
        from repro.core.errors import ProtocolError
        from repro.rtp.clock import SimulatedClock

        clock = SimulatedClock()
        reassembler = UpdateReassembler(now=clock.now, max_partial_age=1.0)
        frags = fragments_for(bytes(300), max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 1,
                         sequence_number=10)
        assert reassembler.has_partial
        clock.advance(5.0)  # partial is now past its deadline
        with pytest.raises(ProtocolError):
            reassembler.push(b"\x01", False, 1, sequence_number=11)
        assert not reassembler.has_partial
        assert reassembler.drops_by_reason["expired"] == 1


class TestLateSequenceAdoption:
    def test_continuation_seq_adopted_after_none_start(self):
        """A START without a sequence number followed by numbered
        continuations: numbering is adopted at the first numbered
        fragment, so a later gap is caught instead of spliced."""
        reassembler = UpdateReassembler()
        data_a = bytes([1]) * 300
        data_b = bytes([2]) * 300
        a = fragments_for(data_a, max_payload=64)
        b = fragments_for(data_b, max_payload=64)
        assert len(a) >= 3
        # START arrives from a path that cannot supply numbering.
        reassembler.push(a[0].payload, a[0].marker, 5)
        # Numbered continuation: its numbering should now bind.
        reassembler.push(a[1].payload, a[1].marker, 5, sequence_number=101)
        # A same-timestamp continuation from another update with a gap
        # must now drop the partial rather than splice.
        result = reassembler.push(
            b[2].payload, b[2].marker, 5, sequence_number=150
        )
        assert result is None
        assert reassembler.drops_by_reason["sequence_gap"] == 1
        assert not reassembler.has_partial

    def test_adopted_numbering_allows_contiguous_finish(self):
        reassembler = UpdateReassembler()
        data = bytes(range(256)) * 2
        frags = fragments_for(data, max_payload=64)
        reassembler.push(frags[0].payload, frags[0].marker, 5)
        result = None
        for seq, frag in enumerate(frags[1:], start=201):
            result = reassembler.push(
                frag.payload, frag.marker, 5, sequence_number=seq
            )
        assert result is not None and result.data == data
