"""Tests for Table 2 fragmentation and reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FragmentationError
from repro.core.fragmentation import (
    Fragment,
    FragmentType,
    UpdateReassembler,
    fragment_update,
)
from repro.core.header import unpack_update_parameter
from repro.core.registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE


def fragments_for(data: bytes, max_payload: int = 64) -> list[Fragment]:
    return fragment_update(MSG_REGION_UPDATE, 5, 96, 10, 20, data, max_payload)


class TestTable2Matrix:
    def test_table2_matrix(self):
        """The exact marker/FirstPacket truth table of Table 2."""
        assert FragmentType.from_bits(True, True) is FragmentType.NOT_FRAGMENTED
        assert FragmentType.from_bits(False, True) is FragmentType.START
        assert FragmentType.from_bits(False, False) is FragmentType.CONTINUATION
        assert FragmentType.from_bits(True, False) is FragmentType.END

    def test_bits_roundtrip(self):
        for fragment_type in FragmentType:
            marker, first = fragment_type.marker, fragment_type.first_packet
            assert FragmentType.from_bits(marker, first) is fragment_type


class TestFragmenter:
    def test_small_update_single_fragment(self):
        frags = fragments_for(b"tiny")
        assert len(frags) == 1
        assert frags[0].marker  # Not Fragmented: marker=1, F=1
        _, pt = unpack_update_parameter(frags[0].payload[1])
        assert pt == 96
        assert frags[0].payload[1] & 0x80

    def test_large_update_fragments(self):
        frags = fragments_for(bytes(500), max_payload=64)
        assert len(frags) > 1
        # Start: marker=0, F=1.
        assert not frags[0].marker and frags[0].payload[1] & 0x80
        # Middle: marker=0, F=0.
        for frag in frags[1:-1]:
            assert not frag.marker and not frag.payload[1] & 0x80
        # End: marker=1, F=0.
        assert frags[-1].marker and not frags[-1].payload[1] & 0x80

    def test_payload_cap_respected(self):
        for frag in fragments_for(bytes(3000), max_payload=100):
            assert frag.size <= 100

    def test_coords_only_in_first(self):
        frags = fragments_for(bytes(300), max_payload=64)
        assert len(frags[0].payload) >= 12  # common + specific headers
        # Continuations: 4-byte common header + data only.
        assert frags[1].payload[4:] != b""

    def test_max_payload_too_small(self):
        with pytest.raises(FragmentationError):
            fragments_for(b"x", max_payload=12)

    def test_empty_data_single_fragment(self):
        frags = fragments_for(b"")
        assert len(frags) == 1
        assert frags[0].marker


class TestReassembler:
    def test_single_fragment(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(b"payload")
        update = reassembler.push(frags[0].payload, frags[0].marker, 100)
        assert update is not None
        assert update.data == b"payload"
        assert (update.left, update.top) == (10, 20)
        assert update.window_id == 5
        assert update.content_pt == 96
        assert update.fragment_count == 1

    def test_multi_fragment(self):
        reassembler = UpdateReassembler()
        data = bytes(range(256)) * 5
        frags = fragments_for(data, max_payload=100)
        result = None
        for frag in frags:
            result = reassembler.push(frag.payload, frag.marker, 777)
        assert result is not None
        assert result.data == data
        assert result.fragment_count == len(frags)

    def test_lost_end_drops_partial(self):
        reassembler = UpdateReassembler()
        first = fragments_for(bytes(300), max_payload=64)
        second = fragments_for(b"next", max_payload=64)
        # Deliver start of first update, then the second (new timestamp).
        reassembler.push(first[0].payload, first[0].marker, 100)
        result = reassembler.push(second[0].payload, second[0].marker, 200)
        assert result is not None
        assert result.data == b"next"
        assert reassembler.updates_dropped == 1

    def test_orphan_continuation_dropped(self):
        reassembler = UpdateReassembler()
        frags = fragments_for(bytes(300), max_payload=64)
        # Start was lost; continuation arrives alone.
        assert reassembler.push(frags[1].payload, frags[1].marker, 100) is None
        assert reassembler.updates_dropped == 1

    def test_window_change_mid_update_drops(self):
        reassembler = UpdateReassembler()
        a = fragment_update(MSG_REGION_UPDATE, 1, 96, 0, 0, bytes(200), 64)
        b = fragment_update(MSG_REGION_UPDATE, 2, 96, 0, 0, bytes(200), 64)
        reassembler.push(a[0].payload, a[0].marker, 50)
        assert reassembler.push(b[1].payload, b[1].marker, 50) is None
        assert reassembler.updates_dropped == 1

    def test_pointer_reassembler(self):
        reassembler = UpdateReassembler(MSG_MOUSE_POINTER_INFO)
        frags = fragment_update(
            MSG_MOUSE_POINTER_INFO, 0, 96, 3, 4, bytes(500), 64
        )
        result = None
        for frag in frags:
            result = reassembler.push(frag.payload, frag.marker, 9)
        assert result is not None and result.data == bytes(500)

    def test_invalid_message_type(self):
        with pytest.raises(FragmentationError):
            UpdateReassembler(1)

    @given(
        data=st.binary(min_size=0, max_size=2000),
        max_payload=st.integers(16, 300),
        timestamp=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, data, max_payload, timestamp):
        frags = fragment_update(
            MSG_REGION_UPDATE, 9, 42, 100, 200, data, max_payload
        )
        reassembler = UpdateReassembler()
        results = [
            reassembler.push(f.payload, f.marker, timestamp) for f in frags
        ]
        assert all(r is None for r in results[:-1])
        final = results[-1]
        assert final is not None
        assert final.data == data
        assert (final.left, final.top) == (100, 200)
        assert final.content_pt == 42
