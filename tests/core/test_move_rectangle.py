"""Tests for MoveRectangle (section 5.2.3, Figure 12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.core.move_rectangle import MoveRectangle

u32 = st.integers(0, 2**32 - 1)


class TestMoveRectangle:
    def test_roundtrip(self):
        move = MoveRectangle(1, 10, 20, 30, 40, 50, 60)
        assert MoveRectangle.decode(move.encode()) == move

    def test_wire_size(self):
        # Common header (4) + six u32 fields (24).
        assert len(MoveRectangle(0, 0, 0, 0, 0, 0, 0).encode()) == 28

    def test_wire_layout(self):
        move = MoveRectangle(5, 1, 2, 3, 4, 5, 6)
        data = move.encode()
        assert data[0] == 3  # MSG_MOVE_RECTANGLE
        values = [int.from_bytes(data[4 + i * 4 : 8 + i * 4], "big") for i in range(6)]
        assert values == [1, 2, 3, 4, 5, 6]

    def test_overlap_detection(self):
        overlapping = MoveRectangle(0, 0, 0, 100, 100, 50, 50)
        assert overlapping.overlaps()
        disjoint = MoveRectangle(0, 0, 0, 10, 10, 100, 100)
        assert not disjoint.overlaps()

    def test_body_length_enforced(self):
        data = MoveRectangle(0, 0, 0, 1, 1, 0, 0).encode()
        with pytest.raises(ProtocolError):
            MoveRectangle.decode(data[:-4])
        with pytest.raises(ProtocolError):
            MoveRectangle.decode(data + b"\x00\x00\x00\x00")

    def test_wrong_type_rejected(self):
        data = bytearray(MoveRectangle(0, 0, 0, 1, 1, 0, 0).encode())
        data[0] = 2
        with pytest.raises(ProtocolError):
            MoveRectangle.decode(bytes(data))

    def test_validation(self):
        with pytest.raises(ProtocolError):
            MoveRectangle(0x1_0000, 0, 0, 1, 1, 0, 0)
        with pytest.raises(ProtocolError):
            MoveRectangle(0, 2**32, 0, 1, 1, 0, 0)

    @given(
        window_id=st.integers(0, 0xFFFF),
        src_left=u32,
        src_top=u32,
        width=u32,
        height=u32,
        dst_left=u32,
        dst_top=u32,
    )
    def test_roundtrip_property(
        self, window_id, src_left, src_top, width, height, dst_left, dst_top
    ):
        move = MoveRectangle(
            window_id, src_left, src_top, width, height, dst_left, dst_top
        )
        assert MoveRectangle.decode(move.encode()) == move
