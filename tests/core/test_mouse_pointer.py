"""Tests for MousePointerInfo (section 5.2.4)."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.mouse_pointer import MousePointerInfo
from repro.core.registry import MSG_MOUSE_POINTER_INFO


class TestMousePointerInfo:
    def test_position_only_roundtrip(self):
        """Payload MAY be only left/top: move the stored image."""
        msg = MousePointerInfo(window_id=0, left=300, top=400)
        decoded = MousePointerInfo.decode_single(msg.encode_single())
        assert decoded == msg
        assert not decoded.has_image

    def test_with_image_roundtrip(self):
        msg = MousePointerInfo(0, 10, 20, content_pt=96, image_data=b"png-bytes")
        decoded = MousePointerInfo.decode_single(msg.encode_single())
        assert decoded.has_image
        assert decoded.image_data == b"png-bytes"
        assert decoded.content_pt == 96

    def test_same_shape_as_region_update(self):
        """'The format of this message is same as RegionUpdate ...
        except they have different message types.'"""
        from repro.core.region_update import RegionUpdate

        pointer = MousePointerInfo(1, 5, 6, 96, b"data").encode_single()
        update = RegionUpdate(1, 5, 6, 96, b"data").encode_single()
        assert pointer[0] == MSG_MOUSE_POINTER_INFO
        assert update[0] != pointer[0]
        assert pointer[1:] == update[1:]  # identical apart from type

    def test_position_only_is_12_bytes(self):
        assert len(MousePointerInfo(0, 1, 2).encode_single()) == 12

    def test_validation(self):
        with pytest.raises(ProtocolError):
            MousePointerInfo(0x1_0000, 0, 0)
        with pytest.raises(ProtocolError):
            MousePointerInfo(0, 2**32, 0)
        with pytest.raises(ProtocolError):
            MousePointerInfo(0, 0, 0, content_pt=200)
