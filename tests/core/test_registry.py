"""Tests for the message-type registries (Tables 1, 3, 4, 5; section 9)."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.registry import (
    MSG_KEY_PRESSED,
    MSG_KEY_RELEASED,
    MSG_KEY_TYPED,
    MSG_MOUSE_MOVED,
    MSG_MOUSE_POINTER_INFO,
    MSG_MOUSE_PRESSED,
    MSG_MOUSE_RELEASED,
    MSG_MOUSE_WHEEL_MOVED,
    MSG_MOVE_RECTANGLE,
    MSG_REGION_UPDATE,
    MSG_WINDOW_MANAGER_INFO,
    MessageTypeRegistry,
    hip_registry,
    remoting_registry,
)


class TestTable1Values:
    def test_remoting_values(self):
        """Table 1: the four remoting message type values."""
        assert MSG_WINDOW_MANAGER_INFO == 1
        assert MSG_REGION_UPDATE == 2
        assert MSG_MOVE_RECTANGLE == 3
        assert MSG_MOUSE_POINTER_INFO == 4


class TestTable3Values:
    def test_hip_values(self):
        """Table 3: HIP message types 121-127."""
        assert MSG_MOUSE_PRESSED == 121
        assert MSG_MOUSE_RELEASED == 122
        assert MSG_MOUSE_MOVED == 123
        assert MSG_MOUSE_WHEEL_MOVED == 124
        assert MSG_KEY_PRESSED == 125
        assert MSG_KEY_RELEASED == 126
        assert MSG_KEY_TYPED == 127


class TestInitialRegistries:
    def test_remoting_registry_contents(self):
        """Table 4: initial values of the remoting subregistry."""
        registry = remoting_registry()
        names = [(e.value, e.name) for e in registry.entries()]
        assert names == [
            (1, "WindowManagerInfo"),
            (2, "RegionUpdate"),
            (3, "MoveRectangle"),
            (4, "MousePointerInfo"),
        ]

    def test_hip_registry_contents(self):
        """Table 5: initial values of the HIP subregistry."""
        registry = hip_registry()
        names = [(e.value, e.name) for e in registry.entries()]
        assert names == [
            (121, "MousePressed"),
            (122, "MouseReleased"),
            (123, "MouseMoved"),
            (124, "MouseWheelMoved"),
            (125, "KeyPressed"),
            (126, "KeyReleased"),
            (127, "KeyTyped"),
        ]

    def test_references_recorded(self):
        for entry in remoting_registry().entries():
            assert entry.reference


class TestRegistryBehaviour:
    def test_lookup_unknown_returns_none(self):
        """Unknown types MAY be ignored, not rejected."""
        assert remoting_registry().lookup(99) is None

    def test_duplicate_value_rejected(self):
        registry = MessageTypeRegistry("test")
        registry.register(10, "A", "ref")
        with pytest.raises(ProtocolError):
            registry.register(10, "B", "ref")

    def test_extension_registration(self):
        registry = remoting_registry()
        entry = registry.register(5, "CopyPaste", "RFC future")
        assert registry.lookup(5) == entry
        assert registry.is_registered(5)

    def test_value_out_of_8bit_rejected(self):
        with pytest.raises(ProtocolError):
            MessageTypeRegistry("test").register(256, "X", "ref")
