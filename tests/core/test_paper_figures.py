"""Executable conformance artifacts for the draft's figures.

Each test reproduces a figure from draft-boyaci-avt-app-sharing-00
byte-for-byte or scenario-for-scenario.
"""

import struct

from repro.core.header import CommonHeader
from repro.core.region_update import RegionUpdate
from repro.core.window_info import WindowManagerInfo, WindowRecord
from repro.rtp.packet import RtpPacket
from repro.sharing.layout import CompactedLayout, OriginalLayout, ShiftedLayout
from repro.surface.geometry import Rect

#: The three shared windows of Figure 2 (AH screen 1280x1024):
#: A at 220,150 (350x450 — B starts at 450,400 so A is 350 wide per
#: Figure 9), B at 450,400 (350x300 — ends 800,700), C at 850,320
#: (160x150 — the draft's Figure 9 numbers).
FIGURE2_RECORDS = (
    WindowRecord(window_id=1, group_id=1, left=220, top=150, width=350, height=450),
    WindowRecord(window_id=2, group_id=2, left=850, top=320, width=160, height=150),
    WindowRecord(window_id=3, group_id=1, left=450, top=400, width=350, height=300),
)


class TestFigure9ExactBytes:
    """Figure 9: the example WindowManagerInfo for Figure 2's windows."""

    def test_exact_byte_image(self):
        message = WindowManagerInfo(FIGURE2_RECORDS).encode()
        expected = b""
        # Common header: Msg Type = 1, Parameter = 0, WindowID = 0.
        expected += struct.pack("!BBH", 1, 0, 0)
        # Record 1: WindowID=1 GroupID=1, 220/150/350/450.
        expected += struct.pack("!HBBIIII", 1, 1, 0, 220, 150, 350, 450)
        # Record 2: WindowID=2 GroupID=2, 850/320/160/150.
        expected += struct.pack("!HBBIIII", 2, 2, 0, 850, 320, 160, 150)
        # Record 3: WindowID=3 GroupID=1, 450/400/350/300.
        expected += struct.pack("!HBBIIII", 3, 1, 0, 450, 400, 350, 300)
        assert message == expected
        assert len(message) == 4 + 3 * 20

    def test_decode_recovers_figure(self):
        decoded = WindowManagerInfo.decode(WindowManagerInfo(FIGURE2_RECORDS).encode())
        assert decoded.records == FIGURE2_RECORDS
        # Groups: windows 1 and 3 share a process (GroupID 1).
        assert decoded.groups() == {1: [1, 3], 2: [2]}


class TestFigure6MessageStructure:
    """Figure 6: RTP header | common header | specific header | payload."""

    def test_message_structure_layers(self):
        update = RegionUpdate(
            window_id=1, left=220, top=150, content_pt=96, data=b"IMG"
        )
        payload = update.encode_single()
        packet = RtpPacket(
            payload_type=99,
            sequence_number=7,
            timestamp=1234,
            ssrc=5,
            payload=payload,
            marker=True,
        )
        wire = packet.encode()
        # Layer 1: 12-byte RTP header.
        assert len(wire) == 12 + len(payload)
        # Layer 2: 4-byte common remoting/HIP header.
        header = CommonHeader.decode(wire[12:])
        assert header.message_type == 2
        # Layer 3: 8-byte message-type specific header (left, top).
        left, top = struct.unpack_from("!II", wire, 16)
        assert (left, top) == (220, 150)
        # Layer 4: message-specific payload.
        assert wire[24:] == b"IMG"


class TestFigure11ExampleRegionUpdate:
    """Figure 11: a non-fragmented RegionUpdate with F=1 and marker=1."""

    def test_figure11_flags(self):
        update = RegionUpdate(1, 0, 0, 96, b"x")
        payload = update.encode_single()
        assert payload[0] == 2  # Msg Type = 2
        assert payload[1] & 0x80  # FirstPacket = 1
        assert int.from_bytes(payload[2:4], "big") == 1  # WindowID = 1
        # Sent unfragmented, the RTP marker bit must also be 1.
        packet = RtpPacket(99, 0, 0, 1, payload, marker=True)
        assert RtpPacket.decode(packet.encode()).marker


class TestCoordinateScenario:
    """Figures 2-5: the three participant layout policies."""

    def _place(self, policy, screen_w, screen_h):
        return policy.place(
            list(FIGURE2_RECORDS), Rect(0, 0, screen_w, screen_h)
        )

    def test_figure3_original_coordinates(self):
        """Participant 1 (1024x768) keeps original coordinates."""
        placements = self._place(OriginalLayout(), 1024, 768)
        assert placements[1].as_tuple() == (220, 150)
        assert placements[2].as_tuple() == (850, 320)
        assert placements[3].as_tuple() == (450, 400)

    def test_figure4_shifted_coordinates(self):
        """Participant 2 shifts all windows 220 left and 150 up."""
        placements = self._place(ShiftedLayout(auto=True), 1280, 1024)
        # Bounding-box min is window A at (220, 150) → shift -220/-150.
        assert placements[1].as_tuple() == (0, 0)
        assert placements[2].as_tuple() == (850 - 220, 320 - 150)
        assert placements[3].as_tuple() == (450 - 220, 400 - 150)
        # Inter-window relations preserved exactly.
        dx12 = placements[2].x - placements[1].x
        assert dx12 == 850 - 220

    def test_figure4_explicit_shift(self):
        placements = ShiftedLayout(dx=-220, dy=-150, auto=False).place(
            list(FIGURE2_RECORDS), Rect(0, 0, 1280, 1024)
        )
        assert placements[1].as_tuple() == (0, 0)

    def test_figure5_compacted_coordinates(self):
        """Participant 3 (640x480) squeezes the windows to fit."""
        placements = self._place(CompactedLayout(), 640, 480)
        for record in FIGURE2_RECORDS:
            p = placements[record.window_id]
            # Every window fully inside the small screen.
            assert p.x + record.width <= 640
            assert p.y + record.height <= 480
            assert p.x >= 0 and p.y >= 0

    def test_compacted_preserves_relative_order(self):
        placements = self._place(CompactedLayout(), 640, 480)
        # A is left of C on the AH; it stays left of C compacted.
        assert placements[1].x < placements[2].x
        # A is above B; stays above.
        assert placements[1].y < placements[3].y


class TestZOrderPreservation:
    """'In this example scenario, all participants preserve the z-order
    of windows' — z-order is implicit in record order, independent of
    layout policy."""

    def test_z_order_from_record_order(self):
        info = WindowManagerInfo(FIGURE2_RECORDS)
        assert info.window_ids() == [1, 2, 3]
        assert info.top_window_id() == 3
