"""Tests for RegionUpdate messages (section 5.2.2)."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.header import CommonHeader
from repro.core.region_update import (
    RegionUpdate,
    encode_update_fragment,
    parse_update_payload,
)
from repro.core.registry import MSG_REGION_UPDATE


class TestSinglePacket:
    def test_roundtrip(self):
        update = RegionUpdate(
            window_id=1, left=100, top=200, content_pt=96, data=b"imagebytes"
        )
        decoded = RegionUpdate.decode_single(update.encode_single())
        assert decoded == update

    def test_wire_layout(self):
        update = RegionUpdate(1, 0x0A, 0x0B, 96, b"Z")
        data = update.encode_single()
        assert data[0] == MSG_REGION_UPDATE
        assert data[1] == 0x80 | 96  # F=1, PT=96
        assert int.from_bytes(data[2:4], "big") == 1
        assert int.from_bytes(data[4:8], "big") == 0x0A
        assert int.from_bytes(data[8:12], "big") == 0x0B
        assert data[12:] == b"Z"

    def test_empty_data_allowed(self):
        update = RegionUpdate(0, 0, 0, 0, b"")
        assert RegionUpdate.decode_single(update.encode_single()).data == b""

    def test_validation(self):
        with pytest.raises(ProtocolError):
            RegionUpdate(0x1_0000, 0, 0, 0, b"")
        with pytest.raises(ProtocolError):
            RegionUpdate(0, 2**32, 0, 0, b"")
        with pytest.raises(ProtocolError):
            RegionUpdate(0, 0, 0, 128, b"")


class TestParsePayload:
    def test_first_fragment_has_coords(self):
        payload = encode_update_fragment(
            MSG_REGION_UPDATE, 7, 96, True, b"chunk", left=11, top=22
        )
        header, first, pt, (left, top, data) = parse_update_payload(
            payload, MSG_REGION_UPDATE
        )
        assert (first, pt) == (True, 96)
        assert (left, top) == (11, 22)
        assert data == b"chunk"
        assert header.window_id == 7

    def test_continuation_has_no_coords(self):
        payload = encode_update_fragment(MSG_REGION_UPDATE, 7, 96, False, b"rest")
        header, first, pt, (left, top, data) = parse_update_payload(
            payload, MSG_REGION_UPDATE
        )
        assert not first
        assert (left, top) == (0, 0)
        assert data == b"rest"
        # Continuation fragments carry only the 4-byte common header.
        assert len(payload) == 4 + len(b"rest")

    def test_wrong_type_rejected(self):
        payload = CommonHeader(3, 0, 0).encode() + b"\x00" * 24
        with pytest.raises(ProtocolError):
            parse_update_payload(payload, MSG_REGION_UPDATE)

    def test_first_fragment_too_short(self):
        payload = CommonHeader(MSG_REGION_UPDATE, 0x80, 0).encode() + b"\x00\x00"
        with pytest.raises(ProtocolError):
            parse_update_payload(payload, MSG_REGION_UPDATE)

    def test_decode_single_on_continuation_rejected(self):
        payload = encode_update_fragment(MSG_REGION_UPDATE, 1, 96, False, b"x")
        with pytest.raises(ProtocolError):
            RegionUpdate.decode_single(payload)

    def test_bad_message_type_for_fragment(self):
        with pytest.raises(ProtocolError):
            encode_update_fragment(1, 0, 96, True, b"")
