"""Tests for WindowManagerInfo and window records (section 5.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.core.window_info import (
    WINDOW_RECORD_LEN,
    WindowManagerInfo,
    WindowRecord,
)

records = st.builds(
    WindowRecord,
    window_id=st.integers(0, 0xFFFF),
    group_id=st.integers(0, 0xFF),
    left=st.integers(0, 2**32 - 1),
    top=st.integers(0, 2**32 - 1),
    width=st.integers(0, 2**32 - 1),
    height=st.integers(0, 2**32 - 1),
)


class TestWindowRecord:
    def test_is_20_bytes(self):
        record = WindowRecord(1, 1, 220, 150, 350, 450)
        assert len(record.encode()) == WINDOW_RECORD_LEN

    def test_roundtrip(self):
        record = WindowRecord(3, 2, 10, 20, 30, 40)
        assert WindowRecord.decode(record.encode()) == record

    def test_grouping_flag(self):
        assert WindowRecord(1, 5, 0, 0, 1, 1).is_grouped
        assert not WindowRecord(1, 0, 0, 0, 1, 1).is_grouped  # 0 = no group

    def test_field_ranges(self):
        with pytest.raises(ProtocolError):
            WindowRecord(0x1_0000, 0, 0, 0, 1, 1)
        with pytest.raises(ProtocolError):
            WindowRecord(0, 256, 0, 0, 1, 1)
        with pytest.raises(ProtocolError):
            WindowRecord(0, 0, 2**32, 0, 1, 1)

    def test_truncated(self):
        with pytest.raises(ProtocolError):
            WindowRecord.decode(b"\x00" * 19)

    @given(records)
    def test_roundtrip_property(self, record):
        assert WindowRecord.decode(record.encode()) == record


class TestWindowManagerInfo:
    def test_empty_message(self):
        info = WindowManagerInfo(())
        decoded = WindowManagerInfo.decode(info.encode())
        assert decoded.records == ()

    def test_roundtrip(self):
        info = WindowManagerInfo(
            (
                WindowRecord(1, 1, 220, 150, 350, 450),
                WindowRecord(2, 2, 850, 320, 160, 150),
            )
        )
        assert WindowManagerInfo.decode(info.encode()) == info

    def test_z_order_is_record_order(self):
        info = WindowManagerInfo(
            (WindowRecord(5, 0, 0, 0, 1, 1), WindowRecord(9, 0, 0, 0, 1, 1))
        )
        assert info.window_ids() == [5, 9]
        assert info.top_window_id() == 9

    def test_groups(self):
        info = WindowManagerInfo(
            (
                WindowRecord(1, 1, 0, 0, 1, 1),
                WindowRecord(2, 2, 0, 0, 1, 1),
                WindowRecord(3, 1, 0, 0, 1, 1),
                WindowRecord(4, 0, 0, 0, 1, 1),
            )
        )
        assert info.groups() == {1: [1, 3], 2: [2]}

    def test_closed_and_opened_since(self):
        old = WindowManagerInfo(
            (WindowRecord(1, 0, 0, 0, 1, 1), WindowRecord(2, 0, 0, 0, 1, 1))
        )
        new = WindowManagerInfo(
            (WindowRecord(2, 0, 0, 0, 1, 1), WindowRecord(3, 0, 0, 0, 1, 1))
        )
        assert new.closed_since(old) == [1]
        assert new.opened_since(old) == [3]

    def test_wrong_type_rejected(self):
        data = bytearray(WindowManagerInfo(()).encode())
        data[0] = 2  # RegionUpdate type
        with pytest.raises(ProtocolError):
            WindowManagerInfo.decode(bytes(data))

    def test_ragged_records_rejected(self):
        data = WindowManagerInfo((WindowRecord(1, 0, 0, 0, 1, 1),)).encode()
        with pytest.raises(ProtocolError):
            WindowManagerInfo.decode(data + b"\x00" * 7)

    @given(st.lists(records, max_size=6))
    @settings(max_examples=30)
    def test_roundtrip_property(self, record_list):
        info = WindowManagerInfo(tuple(record_list))
        assert WindowManagerInfo.decode(info.encode()) == info
