"""Tests for the common remoting/HIP header (Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.core.header import (
    COMMON_HEADER_LEN,
    CommonHeader,
    pack_update_parameter,
    unpack_update_parameter,
)


class TestCommonHeader:
    def test_encode_layout(self):
        header = CommonHeader(message_type=2, parameter=0x85, window_id=0x1234)
        data = header.encode()
        assert data == bytes([2, 0x85, 0x12, 0x34])
        assert len(data) == COMMON_HEADER_LEN

    def test_roundtrip(self):
        header = CommonHeader(1, 0, 65535)
        assert CommonHeader.decode(header.encode()) == header

    def test_decode_ignores_trailing(self):
        header = CommonHeader(3, 7, 9)
        assert CommonHeader.decode(header.encode() + b"extra") == header

    def test_too_short(self):
        with pytest.raises(ProtocolError):
            CommonHeader.decode(b"\x01\x02\x03")

    def test_window_id_range(self):
        with pytest.raises(ProtocolError):
            CommonHeader(1, 0, 0x1_0000)

    def test_parameter_range(self):
        with pytest.raises(ProtocolError):
            CommonHeader(1, 256, 0)

    @given(
        st.integers(0, 255), st.integers(0, 255), st.integers(0, 0xFFFF)
    )
    def test_roundtrip_property(self, msg_type, parameter, window_id):
        header = CommonHeader(msg_type, parameter, window_id)
        assert CommonHeader.decode(header.encode()) == header


class TestUpdateParameter:
    def test_pack_first_bit(self):
        assert pack_update_parameter(True, 0) == 0x80
        assert pack_update_parameter(False, 0) == 0x00

    def test_pack_pt(self):
        assert pack_update_parameter(True, 96) == 0x80 | 96
        assert pack_update_parameter(False, 127) == 127

    def test_unpack(self):
        assert unpack_update_parameter(0x80 | 99) == (True, 99)
        assert unpack_update_parameter(99) == (False, 99)

    def test_pt_range(self):
        with pytest.raises(ProtocolError):
            pack_update_parameter(True, 128)

    @given(st.booleans(), st.integers(0, 127))
    def test_roundtrip_property(self, first, pt):
        assert unpack_update_parameter(pack_update_parameter(first, pt)) == (
            first,
            pt,
        )
