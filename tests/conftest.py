"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.rtp.clock import SimulatedClock

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def noise_image(rng: np.random.Generator) -> np.ndarray:
    """A small random RGBA image (incompressible content)."""
    return rng.integers(0, 256, size=(24, 31, 4)).astype(np.uint8)


@pytest.fixture
def flat_image() -> np.ndarray:
    """A small solid-colour RGBA image (maximally compressible)."""
    img = np.empty((40, 50, 4), dtype=np.uint8)
    img[:, :] = (10, 200, 30, 255)
    return img
