"""Stateful property test over a full live session.

A hypothesis state machine drives window management, app activity, and
remote HIP input against a real AH↔participant pair over a zero-delay
stream.  The machine-wide invariant: whenever traffic drains, the
participant's visible composite equals the AH's screen.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.apps.text_editor import TextEditorApp
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.sharing.participant import Participant
from repro.sharing.transport import StreamTransport
from repro.surface.geometry import Rect

SCREEN_W, SCREEN_H = 640, 480


class SessionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = SimulatedClock()
        self.ah = ApplicationHost(
            screen_width=SCREEN_W,
            screen_height=SCREEN_H,
            config=SharingConfig(adaptive_codec=False),
            clock=self.clock.now,
        )
        link = duplex_reliable(ChannelConfig(delay=0.0), self.clock.now)
        self.ah.add_participant(
            "p", StreamTransport(link.forward, link.backward)
        )
        self.participant = Participant(
            "p",
            StreamTransport(link.backward, link.forward),
            clock=self.clock.now,
            config=self.ah.config,
            screen_width=SCREEN_W,
            screen_height=SCREEN_H,
        )
        self.participant.join()
        self._drain()

    def _drain(self) -> None:
        for _ in range(4):
            self.ah.advance(0.02)
            self.clock.advance(0.02)
            self.participant.process_incoming()

    # -- Rules ------------------------------------------------------------

    @rule(
        left=st.integers(0, SCREEN_W - 80),
        top=st.integers(0, SCREEN_H - 60),
        width=st.integers(60, 250),
        height=st.integers(50, 200),
    )
    def create_editor(self, left, top, width, height):
        if len(self.ah.windows) < 4:
            window = self.ah.windows.create_window(
                Rect(left, top, width, height)
            )
            self.ah.apps.attach(TextEditorApp(window))
        self._drain()

    @precondition(lambda self: len(self.ah.windows) > 1)
    @rule(index=st.integers(0, 3))
    def close_window(self, index):
        ids = self.ah.windows.window_ids()
        wid = ids[index % len(ids)]
        self.ah.apps.detach(wid)
        self.ah.windows.close_window(wid)
        self._drain()

    @precondition(lambda self: len(self.ah.windows) > 0)
    @rule(index=st.integers(0, 3), dx=st.integers(-60, 60),
          dy=st.integers(-60, 60))
    def move_window(self, index, dx, dy):
        ids = self.ah.windows.window_ids()
        wid = ids[index % len(ids)]
        rect = self.ah.windows.get(wid).rect
        self.ah.windows.move_window(
            wid, max(0, rect.left + dx), max(0, rect.top + dy)
        )
        self._drain()

    @precondition(lambda self: len(self.ah.windows) > 0)
    @rule(index=st.integers(0, 3),
          text=st.text(alphabet="abc \n", min_size=1, max_size=12))
    def remote_typing(self, index, text):
        ids = self.ah.windows.window_ids()
        wid = ids[index % len(ids)]
        self.participant.type_text(wid, text)
        self._drain()

    @precondition(lambda self: len(self.ah.windows) > 0)
    @rule(index=st.integers(0, 3))
    def restack(self, index):
        ids = self.ah.windows.window_ids()
        self.ah.windows.raise_window(ids[index % len(ids)])
        self._drain()

    # -- Invariant -----------------------------------------------------------

    @rule()
    def check_convergence(self):
        self._drain()
        assert self.participant.screen_converged_with(self.ah.windows)
        assert self.participant.z_order == self.ah.windows.window_ids()


TestSessionStateful = SessionMachine.TestCase
TestSessionStateful.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
