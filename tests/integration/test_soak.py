"""Randomised soak test: arbitrary operation sequences must converge.

A seeded random driver interleaves window management (create, move,
resize, restack, close), app activity (typing, scrolling, drawing) and
remote HIP input, over both TCP and lossy UDP.  Whatever the sequence,
after the dust settles every participant's windows must equal the AH's
pixel-for-pixel — the system-level invariant of the whole protocol.
"""

import random

import pytest

from repro.apps.base import SyntheticApp
from repro.apps.terminal import TerminalApp
from repro.apps.text_editor import TextEditorApp
from repro.apps.whiteboard import WhiteboardApp
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from .helpers import run_session, settle, tcp_pair, udp_pair

APP_FACTORIES = [TextEditorApp, TerminalApp, WhiteboardApp]


class RandomDriver:
    """Applies random-but-seeded operations to a live AH."""

    def __init__(self, ah: ApplicationHost, seed: int) -> None:
        self.ah = ah
        self.rng = random.Random(seed)
        self.ops_applied = 0

    def _random_rect(self) -> Rect:
        width = self.rng.randrange(60, 400)
        height = self.rng.randrange(60, 300)
        left = self.rng.randrange(0, 1280 - width)
        top = self.rng.randrange(0, 1024 - height)
        return Rect(left, top, width, height)

    def step(self) -> None:
        self.ops_applied += 1
        windows = self.ah.windows.window_ids()
        roll = self.rng.random()
        if roll < 0.08 and len(windows) < 5:
            factory = self.rng.choice(APP_FACTORIES)
            window = self.ah.windows.create_window(
                self._random_rect(), group_id=self.rng.randrange(0, 4)
            )
            self.ah.apps.attach(factory(window))
        elif roll < 0.12 and len(windows) > 1:
            victim = self.rng.choice(windows)
            self.ah.apps.detach(victim)
            self.ah.windows.close_window(victim)
        elif roll < 0.2 and windows:
            wid = self.rng.choice(windows)
            rect = self.ah.windows.get(wid).rect
            self.ah.windows.move_window(
                wid,
                max(0, min(1280 - rect.width, rect.left + self.rng.randrange(-80, 81))),
                max(0, min(1024 - rect.height, rect.top + self.rng.randrange(-80, 81))),
            )
        elif roll < 0.26 and windows:
            wid = self.rng.choice(windows)
            self.ah.windows.resize_window(
                wid, self.rng.randrange(60, 400), self.rng.randrange(60, 300)
            )
        elif roll < 0.3 and windows:
            self.ah.windows.raise_window(self.rng.choice(windows))
        elif windows:
            wid = self.rng.choice(windows)
            app = self.ah.apps.app_for(wid)
            self._drive_app(app)

    def _drive_app(self, app: SyntheticApp | None) -> None:
        if isinstance(app, TextEditorApp):
            app.type_text(
                "".join(
                    self.rng.choice("abcdefg hij\n") for _ in range(self.rng.randrange(1, 12))
                )
            )
        elif isinstance(app, TerminalApp):
            app.run_build_output(self.rng.randrange(1, 4), start=self.ops_applied)
        elif isinstance(app, WhiteboardApp):
            x = self.rng.randrange(0, app.window.rect.width)
            y = self.rng.randrange(0, app.window.rect.height)
            app.on_mouse_pressed(x, y, 1)
            app.on_mouse_moved(
                min(app.window.rect.width - 1, x + self.rng.randrange(0, 60)),
                min(app.window.rect.height - 1, y + self.rng.randrange(0, 40)),
            )
            app.on_mouse_released(x, y, 1)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_soak_tcp(seed):
    clock = SimulatedClock()
    ah = ApplicationHost(clock=clock.now, config=SharingConfig(adaptive_codec=False))
    window = ah.windows.create_window(Rect(50, 50, 300, 200))
    ah.apps.attach(TextEditorApp(window))
    participant = tcp_pair(clock, ah)
    driver = RandomDriver(ah, seed)

    def drive(i):
        if i % 3 == 0:
            driver.step()

    run_session(clock, ah, [participant], 300, per_round=drive)
    settle(clock, ah, [participant], 120)
    # The visible composite must match exactly; full-surface equality
    # is not guaranteed when regions stayed occluded the whole session.
    assert participant.screen_converged_with(ah.windows)
    assert participant.z_order == ah.windows.window_ids()


@pytest.mark.parametrize("seed", [3, 11])
def test_soak_udp_with_loss(seed):
    clock = SimulatedClock()
    ah = ApplicationHost(clock=clock.now, config=SharingConfig(adaptive_codec=False))
    window = ah.windows.create_window(Rect(50, 50, 300, 200))
    ah.apps.attach(TextEditorApp(window))
    participant = udp_pair(clock, ah, loss_rate=0.05, seed=seed)
    driver = RandomDriver(ah, seed)

    def drive(i):
        if i % 4 == 0:
            driver.step()

    run_session(clock, ah, [participant], 300, per_round=drive)
    settle(clock, ah, [participant], 300)
    assert participant.screen_converged_with(ah.windows)


def test_soak_two_participants_mixed():
    clock = SimulatedClock()
    ah = ApplicationHost(clock=clock.now, config=SharingConfig(adaptive_codec=False))
    window = ah.windows.create_window(Rect(50, 50, 300, 200))
    ah.apps.attach(TextEditorApp(window))
    tcp_p = tcp_pair(clock, ah, "tcp")
    udp_p = udp_pair(clock, ah, "udp", loss_rate=0.03, seed=5)
    driver = RandomDriver(ah, seed=99)

    def drive(i):
        if i % 3 == 0:
            driver.step()

    run_session(clock, ah, [tcp_p, udp_p], 250, per_round=drive)
    settle(clock, ah, [tcp_p, udp_p], 250)
    assert tcp_p.screen_converged_with(ah.windows)
    assert udp_p.screen_converged_with(ah.windows)
