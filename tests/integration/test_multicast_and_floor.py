"""Multicast sessions and BFCP-gated HIP control."""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.bfcp.client import FloorControlClient, FloorState
from repro.bfcp.hid_status import HidStatus
from repro.bfcp.server import FloorControlServer
from repro.net.channel import ChannelConfig, duplex_lossy
from repro.net.multicast import MulticastGroup
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.participant import Participant
from repro.sharing.transport import (
    MulticastReceiverTransport,
    MulticastSenderTransport,
)
from repro.surface.geometry import Rect

from .helpers import run_session, settle, tcp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


def multicast_session(clock, ah, names, loss_rate=0.0):
    """Create a multicast group session with unicast feedback paths."""
    group = MulticastGroup(
        ChannelConfig(delay=0.01, loss_rate=loss_rate, seed=17), clock.now
    )
    # One feedback (unicast, reliable-ish lossless datagram) path back
    # from each receiver to the AH for PLI/NACK.
    feedback_links = {}
    participants = []
    group_transport = MulticastSenderTransport(group)
    ah.add_participant("mcast-group", group_transport, is_group=True)
    for name in names:
        member_channel = group.subscribe(name)
        feedback = duplex_lossy(ChannelConfig(delay=0.01, seed=hash(name) % 97), clock.now)
        feedback_links[name] = feedback
        transport = MulticastReceiverTransport(member_channel, feedback.backward)
        participant = Participant(
            name, transport, clock=clock.now, config=ah.config,
        )
        participants.append(participant)
    return group, participants, feedback_links


class TestMulticastSession:
    def test_one_send_many_receivers(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 250, 180))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        _group, participants, feedbacks = multicast_session(
            clock, ah, ["m1", "m2", "m3"]
        )
        # Feedback PLIs are delivered out-of-band to the AH group session.
        session = ah.sessions["mcast-group"]

        def pump_feedback():
            for feedback in feedbacks.values():
                for packet in feedback.backward.receive_ready():
                    ah._handle_rtcp(session, packet)

        for participant in participants:
            participant.join()

        def drive(i):
            pump_feedback()
            if i % 6 == 0 and i < 120:
                editor.type_text(f"multicast {i}\n")

        run_session(clock, ah, participants, 250, per_round=drive)
        pump_feedback()
        settle(clock, ah, participants, 50)
        for participant in participants:
            assert participant.converged_with(ah.windows)
        # The AH encoded each update once for the whole group.
        assert session.scheduler.packets_sent > 0


class TestFloorControlledSession:
    def test_only_floor_holder_controls(self, clock):
        floor_server = FloorControlServer()
        ah = ApplicationHost(clock=clock.now, floor_check=floor_server.floor_check)
        win = ah.windows.create_window(Rect(0, 0, 400, 300))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        alice = tcp_pair(clock, ah, "alice")
        bob = tcp_pair(clock, ah, "bob")
        settle(clock, ah, [alice, bob], 40)

        floor_server.request_floor("alice", user_id=1)
        alice.type_text(win.window_id, "from alice ")
        bob.type_text(win.window_id, "from bob ")
        settle(clock, ah, [alice, bob], 60)
        assert editor.text() == "from alice "
        assert ah.injector.stats.rejected_floor > 0

    def test_floor_handover(self, clock):
        floor_server = FloorControlServer()
        ah = ApplicationHost(clock=clock.now, floor_check=floor_server.floor_check)
        win = ah.windows.create_window(Rect(0, 0, 400, 300))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        alice = tcp_pair(clock, ah, "alice")
        bob = tcp_pair(clock, ah, "bob")
        settle(clock, ah, [alice, bob], 40)

        request_alice = floor_server.request_floor("alice", 1)
        floor_server.request_floor("bob", 2)  # queued FIFO
        alice.type_text(win.window_id, "A")
        settle(clock, ah, [alice, bob], 40)
        floor_server.release_floor(request_alice)
        bob.type_text(win.window_id, "B")
        settle(clock, ah, [alice, bob], 40)
        assert editor.text() == "AB"

    def test_hid_status_blocks_keyboard_only(self, clock):
        """Appendix A: the AH may temporarily block HID events without
        revoking the floor."""
        floor_server = FloorControlServer()
        ah = ApplicationHost(clock=clock.now, floor_check=floor_server.floor_check)
        win = ah.windows.create_window(Rect(0, 0, 400, 300))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        alice = tcp_pair(clock, ah, "alice")
        settle(clock, ah, [alice], 40)
        floor_server.request_floor("alice", 1)
        floor_server.set_hid_status(HidStatus.STATE_MOUSE_ALLOWED)
        alice.type_text(win.window_id, "blocked")
        alice.click(win.window_id, 10, 10)
        settle(clock, ah, [alice], 40)
        assert editor.text() == ""  # keyboard blocked
        assert ah.injector.stats.by_type.get("MousePressed", 0) == 1
