"""Figure 1 end-to-end: AH serves participants, HIP comes back."""

import pytest

from repro.apps.photo_viewer import PhotoViewerApp
from repro.apps.terminal import TerminalApp
from repro.apps.text_editor import TextEditorApp
from repro.core import keycodes
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import PointerMode, SharingConfig
from repro.sharing.layout import CompactedLayout, ShiftedLayout
from repro.surface.geometry import Rect

from .helpers import run_session, settle, tcp_pair, udp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


class TestSingleParticipantTcp:
    def test_initial_sync_pixel_exact(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(220, 150, 350, 450), group_id=1)
        editor = TextEditorApp(win)
        editor.type_text("INITIAL STATE")
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], rounds=50)
        assert participant.converged_with(ah.windows)
        assert participant.z_order == ah.windows.window_ids()

    def test_incremental_updates_converge(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 300, 200))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)

        def drive(i):
            if i % 5 == 0 and i < 100:
                editor.type_text(f"word{i} ")

        run_session(clock, ah, [participant], rounds=150, per_round=drive)
        assert participant.converged_with(ah.windows)
        assert participant.updates_applied > 5

    def test_window_lifecycle_propagates(self, clock):
        ah = ApplicationHost(clock=clock.now)
        first = ah.windows.create_window(Rect(0, 0, 100, 100))
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        assert set(participant.windows) == {first.window_id}

        second = ah.windows.create_window(Rect(200, 200, 80, 80))
        settle(clock, ah, [participant], 30)
        assert set(participant.windows) == {first.window_id, second.window_id}

        ah.windows.close_window(first.window_id)
        settle(clock, ah, [participant], 30)
        # "MUST close this window after receiving a WindowManagerInfo
        # message which does not contain this WindowID."
        assert set(participant.windows) == {second.window_id}

    def test_move_and_resize_propagate(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 100, 100))
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)

        ah.windows.move_window(win.window_id, 400, 300)
        ah.windows.resize_window(win.window_id, 150, 120)
        settle(clock, ah, [participant], 50)
        record = participant.windows[win.window_id].record
        assert (record.left, record.top) == (400, 300)
        assert (record.width, record.height) == (150, 120)
        assert participant.converged_with(ah.windows)

    def test_z_order_change_propagates(self, clock):
        ah = ApplicationHost(clock=clock.now)
        a = ah.windows.create_window(Rect(0, 0, 100, 100))
        b = ah.windows.create_window(Rect(50, 50, 100, 100))
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        assert participant.z_order == [a.window_id, b.window_id]
        ah.windows.raise_window(a.window_id)
        settle(clock, ah, [participant], 30)
        assert participant.z_order == [b.window_id, a.window_id]


class TestHipRoundTrip:
    def test_remote_typing_appears_on_ah(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(100, 100, 400, 300))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)

        participant.type_text(win.window_id, "TYPED REMOTELY")
        settle(clock, ah, [participant], 60)
        assert editor.text() == "TYPED REMOTELY"
        # And the resulting pixels came back to the participant.
        assert participant.converged_with(ah.windows)

    def test_remote_key_navigation(self, clock):
        # Lossless-only so the photographic content still converges
        # pixel-exact (adaptive lossy is exercised separately below).
        ah = ApplicationHost(
            config=SharingConfig(adaptive_codec=False), clock=clock.now
        )
        win = ah.windows.create_window(Rect(0, 0, 320, 240))
        viewer = PhotoViewerApp(win)
        ah.apps.attach(viewer)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 60)

        participant.press_key(win.window_id, keycodes.VK_RIGHT)
        settle(clock, ah, [participant], 80)
        assert viewer.index == 1
        assert participant.converged_with(ah.windows)

    def test_adaptive_lossy_close_but_inexact_on_photos(self, clock):
        """With adaptive codecs on, photo content arrives lossily —
        visually close (small mean error) but not bit-exact."""
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 320, 240))
        ah.apps.attach(PhotoViewerApp(win))
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 60)
        local = participant.windows[win.window_id]
        assert not participant.converged_with(ah.windows)
        assert local.surface.mean_abs_error(win.surface) < 6.0

    def test_out_of_window_event_rejected_at_ah(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(100, 100, 50, 50))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        participant.send_raw_mouse(10, 10)  # outside the shared window
        settle(clock, ah, [participant], 30)
        assert ah.injector.stats.rejected_out_of_window == 1

    def test_wheel_round_trip(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 320, 240))
        viewer = PhotoViewerApp(win)
        ah.apps.attach(viewer)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 60)
        participant.wheel(win.window_id, 10, 10, -120)
        settle(clock, ah, [participant], 80)
        assert viewer.index == 1


class TestMultiParticipant:
    def test_three_participants_with_different_layouts(self, clock):
        """Figures 3-5: same session, three layout policies."""
        ah = ApplicationHost(clock=clock.now)
        for rect, group in (
            (Rect(220, 150, 350, 450), 1),
            (Rect(850, 320, 160, 150), 2),
            (Rect(450, 400, 350, 300), 1),
        ):
            ah.windows.create_window(rect, group_id=group)
        p1 = tcp_pair(clock, ah, "p1", screen=(1024, 768))
        p2 = tcp_pair(clock, ah, "p2", layout=ShiftedLayout(auto=True))
        p3 = tcp_pair(
            clock, ah, "p3", layout=CompactedLayout(), screen=(640, 480)
        )
        settle(clock, ah, [p1, p2, p3], 80)
        for participant in (p1, p2, p3):
            assert participant.converged_with(ah.windows)
        # Same pixels, different placements.
        assert p1.windows[1].local_origin.as_tuple() == (220, 150)
        assert p2.windows[1].local_origin.as_tuple() == (0, 0)
        p3_origin = p3.windows[3].local_origin
        assert p3_origin.x + 350 <= 640

    def test_grouped_layout_in_live_session(self, clock):
        """Section 4.1: a participant using GroupID to relocate the
        same-process windows together, mid-session."""
        from repro.sharing.layout import GroupedLayout

        ah = ApplicationHost(clock=clock.now)
        a = ah.windows.create_window(Rect(220, 150, 120, 100), group_id=1)
        b = ah.windows.create_window(Rect(280, 230, 120, 100), group_id=1)
        c = ah.windows.create_window(Rect(850, 320, 120, 100), group_id=2)
        participant = tcp_pair(clock, ah, layout=GroupedLayout())
        settle(clock, ah, [participant], 60)
        assert participant.converged_with(ah.windows)
        pa = participant.windows[a.window_id].local_origin
        pb = participant.windows[b.window_id].local_origin
        # Group 1 members keep their relative offset (60, 80).
        assert (pb.x - pa.x, pb.y - pa.y) == (60, 80)
        # Group 2 sits apart from group 1's bounding box.
        pc = participant.windows[c.window_id].local_origin
        assert pc.x >= pb.x + 120 or pa.x >= pc.x + 120

    def test_mixed_tcp_udp_session(self, clock):
        """Section 4.2: TCP and UDP participants in one session."""
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        term = TerminalApp(win)
        ah.apps.attach(term)
        tcp_participant = tcp_pair(clock, ah, "tcp-1")
        udp_participant = udp_pair(clock, ah, "udp-1", seed=3)

        def drive(i):
            if i % 4 == 0 and i < 80:
                term.append_line(f"$ job {i}")

        run_session(
            clock, ah, [tcp_participant, udp_participant], 160, per_round=drive
        )
        assert tcp_participant.converged_with(ah.windows)
        assert udp_participant.converged_with(ah.windows)


class TestPointerModels:
    def test_explicit_pointer_reaches_participant(self, clock):
        config = SharingConfig(pointer_mode=PointerMode.EXPLICIT)
        ah = ApplicationHost(config=config, clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 300, 300))
        board_app = __import__(
            "repro.apps.whiteboard", fromlist=["WhiteboardApp"]
        ).WhiteboardApp(win)
        ah.apps.attach(board_app)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        participant.move_mouse(win.window_id, 123, 77)
        settle(clock, ah, [participant], 50)
        assert participant.pointer_position == (123, 77)
        assert participant.pointer_image is not None

    def test_in_band_pointer_mode_sends_no_pointer_messages(self, clock):
        config = SharingConfig(pointer_mode=PointerMode.IN_BAND)
        ah = ApplicationHost(config=config, clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 100, 100))
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 40)
        assert participant.stats.pointer.packets == 0
        assert participant.pointer_position is None
