"""Periodic RTCP flow in live sessions, and desktop-sharing mode."""

import numpy as np
import pytest

from repro.apps.photo import ui_screenshot
from repro.apps.text_editor import TextEditorApp
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from .helpers import run_session, settle, tcp_pair, udp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


class TestPeriodicRtcp:
    def test_reports_flow_both_ways(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = udp_pair(clock, ah)

        def drive(i):
            if i % 10 == 0:
                editor.type_text("tick ")

        # 20 seconds of session: multiple report intervals.
        run_session(clock, ah, [participant], 1000, per_round=drive)
        session = ah.sessions["p1"]
        assert session.reporter.reports_sent >= 2
        assert participant.reporter.reports_sent >= 2

    def test_participant_rr_reflects_loss(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = udp_pair(clock, ah, loss_rate=0.1, seed=4)

        def drive(i):
            if i % 5 == 0:
                editor.type_text(f"row {i}\n")

        run_session(clock, ah, [participant], 1200, per_round=drive)
        # Losses occurred (NACKs prove it); cumulative-lost may return
        # to zero because retransmissions count as received — exactly
        # the RFC 3550 accounting an RR carries.
        assert participant.nacks_sent > 0
        assert participant.reporter.reports_sent >= 2

    def test_ah_report_blocks_cover_hip_stream(self, clock):
        """The AH's SRs carry reception blocks for the inbound HIP
        stream once the participant has sent events."""
        from repro.rtp.rtcp import decode_compound

        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        run_session(clock, ah, [participant], 30)
        participant.type_text(win.window_id, "hip traffic")
        run_session(clock, ah, [participant], 30)
        session = ah.sessions["p1"]
        assert session.hip_receiver.packets_received > 0
        compound = decode_compound(session.reporter.build_compound())
        blocks = compound[0].reports
        assert len(blocks) == 1
        assert blocks[0].ssrc == participant.hip_sender.ssrc

    def test_participant_learns_sr_timebase(self, clock):
        ah = ApplicationHost(clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 100, 100))
        participant = tcp_pair(clock, ah)
        run_session(clock, ah, [participant], 1000)
        # After the AH's first SR, the participant records its NTP stamp
        # for LSR/DLSR computation.
        assert participant.reporter._last_sr_ntp is not None


class TestDesktopSharing:
    def test_share_desktop_single_full_screen_window(self, clock):
        ah = ApplicationHost(
            screen_width=800, screen_height=600, clock=clock.now
        )
        desktop = ah.share_desktop()
        assert desktop.rect == Rect(0, 0, 800, 600)
        participant = tcp_pair(clock, ah, screen=(800, 600))
        settle(clock, ah, [participant], 40)
        assert participant.converged_with(ah.windows)

    def test_desktop_updates_propagate(self, clock):
        ah = ApplicationHost(
            screen_width=640, screen_height=480,
            config=SharingConfig(adaptive_codec=False), clock=clock.now
        )
        desktop = ah.share_desktop()
        participant = tcp_pair(clock, ah, screen=(640, 480))
        settle(clock, ah, [participant], 40)
        # Paint a fake full desktop and a dirty region.
        desktop.draw_pixels(0, 0, ui_screenshot(640, 480, seed=3))
        settle(clock, ah, [participant], 60)
        assert participant.converged_with(ah.windows)
        local = participant.render_screen(include_pointer=False)
        assert np.array_equal(
            local.array, ah.windows.composite().array
        )
