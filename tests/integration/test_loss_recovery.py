"""UDP loss recovery: NACK retransmission and PLI fallback (section 5.3)."""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from .helpers import run_session, settle, udp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


def editor_session(clock, config=None):
    ah = ApplicationHost(config=config or SharingConfig(), clock=clock.now)
    win = ah.windows.create_window(Rect(50, 50, 400, 300))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)
    return ah, win, editor


class TestNackRecovery:
    def test_converges_under_loss_with_retransmissions(self, clock):
        ah, _win, editor = editor_session(clock)
        participant = udp_pair(clock, ah, loss_rate=0.08, seed=21)

        def drive(i):
            if i % 8 == 0 and i < 240:
                editor.type_text(f"resilient line {i}\n")

        run_session(clock, ah, [participant], 500, per_round=drive)
        assert participant.converged_with(ah.windows)
        assert participant.nacks_sent > 0
        assert ah.nacks_received > 0

    def test_retransmissions_answered_from_cache(self, clock):
        ah, _win, editor = editor_session(clock)
        participant = udp_pair(clock, ah, loss_rate=0.1, seed=5)

        def drive(i):
            if i % 10 == 0 and i < 150:
                editor.type_text(f"{i}:0123456789\n")

        run_session(clock, ah, [participant], 400, per_round=drive)
        cache = ah.sessions["p1"].scheduler.retransmit_cache
        assert cache.hits > 0

    def test_zero_loss_no_nacks(self, clock):
        ah, _win, editor = editor_session(clock)
        participant = udp_pair(clock, ah, loss_rate=0.0)
        run_session(
            clock,
            ah,
            [participant],
            120,
            per_round=lambda i: editor.type_text("x") if i % 10 == 0 else None,
        )
        assert participant.nacks_sent == 0
        assert participant.converged_with(ah.windows)


class TestPliFallback:
    def test_pli_recovery_without_retransmissions(self, clock):
        """retransmissions=no → the participant falls back to PLI."""
        config = SharingConfig(retransmissions=False)
        ah, _win, editor = editor_session(clock, config)
        participant = udp_pair(clock, ah, loss_rate=0.15, seed=9)

        def drive(i):
            if i % 8 == 0 and i < 240:
                editor.type_text(f"fallback {i}\n")

        run_session(clock, ah, [participant], 600, per_round=drive)
        assert participant.nacks_sent == 0  # NACKs pointless without rtx
        assert ah.plis_received > 0
        assert participant.converged_with(ah.windows)

    def test_manual_pli_forces_full_refresh(self, clock):
        ah, win, editor = editor_session(clock)
        participant = udp_pair(clock, ah)
        settle(clock, ah, [participant], 40)
        before = ah.plis_received
        # Corrupt local state, then ask for a refresh.
        participant.windows[win.window_id].surface.fill((1, 2, 3, 255))
        assert not participant.converged_with(ah.windows)
        participant.send_pli()
        settle(clock, ah, [participant], 60)
        assert ah.plis_received == before + 1
        assert participant.converged_with(ah.windows)


class TestTailLoss:
    def test_tail_loss_recovered_via_keepalive(self, clock):
        """A packet lost at the very end of a burst leaves no later
        packet to expose the gap; the idle-sender keepalive keeps the
        sequence space moving so the NACK machinery still fires."""
        ah, win, editor = editor_session(clock)
        participant = udp_pair(clock, ah)
        settle(clock, ah, [participant], 40)
        assert participant.converged_with(ah.windows)

        # One final burst whose packets we drop deterministically by
        # raising the loss floor just for these sends.
        link_out = ah.sessions["p1"].transport._out
        original_rate = link_out.config.loss_rate
        editor.type_text("the very last line\n")
        # Force-drop everything the next advance sends.
        object.__setattr__(link_out.config, "loss_rate", 0.999999)
        ah.advance(0.02)
        clock.advance(0.02)
        object.__setattr__(link_out.config, "loss_rate", original_rate)
        participant.process_incoming()
        assert not participant.converged_with(ah.windows)

        # Total silence afterwards: only keepalives flow.  They reveal
        # the gap, the participant NACKs/PLIs, and state converges.
        settle(clock, ah, [participant], 200)
        assert ah.sessions["p1"].scheduler.keepalives_sent > 0
        assert participant.converged_with(ah.windows)

    def test_keepalives_not_sent_on_tcp(self, clock):
        from .helpers import tcp_pair

        ah, _win, _editor = editor_session(clock)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 200)
        assert ah.sessions["p1"].scheduler.keepalives_sent == 0

    def test_keepalive_disabled_by_config(self, clock):
        config = SharingConfig(keepalive_interval=0)
        ah, _win, _editor = editor_session(clock, config)
        participant = udp_pair(clock, ah)
        settle(clock, ah, [participant], 200)
        assert ah.sessions["p1"].scheduler.keepalives_sent == 0


class TestLateJoiner:
    def test_late_joiner_syncs_via_pli(self, clock):
        """Section 4.3: late joiners PLI, the AH answers with
        WindowManagerInfo plus a full image."""
        ah, _win, editor = editor_session(clock)
        early = udp_pair(clock, ah, "early", seed=1)

        def drive(i):
            if i % 5 == 0:
                editor.type_text(f"history {i}\n")

        run_session(clock, ah, [early], 100, per_round=drive)
        # 2 seconds in, a second participant joins mid-session.
        late = udp_pair(clock, ah, "late", seed=2)
        settle(clock, ah, [early, late], 80)
        assert ah.plis_received >= 1
        assert late.wmi_applied >= 1
        assert late.converged_with(ah.windows)

    def test_late_joiner_pli_lost_retries(self, clock):
        ah, _win, _editor = editor_session(clock)
        settle(clock, ah, [], 10)
        # Loss rate high enough that the first PLI may vanish.
        late = udp_pair(clock, ah, "late", loss_rate=0.4, seed=13)
        run_session(clock, ah, [late], 800)
        assert late.plis_sent >= 1
        assert late.wmi_applied >= 1
        assert late.converged_with(ah.windows)

    def test_tcp_joiner_synced_without_pli(self, clock):
        from .helpers import tcp_pair

        ah, _win, editor = editor_session(clock)
        editor.type_text("pre-join content\n")
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 50)
        assert participant.plis_sent == 0  # TCP sync is connect-time
        assert participant.converged_with(ah.windows)


def _snapshot_total(snap: dict, name: str) -> float:
    """Sum a counter family across label sets in an obs snapshot."""
    return sum(
        value for key, value in snap["counters"].items()
        if key == name or key.startswith(name + "{")
    )


class TestBurstLossRecovery:
    """Acceptance: a scripted 10% Gilbert–Elliott burst-loss profile
    with reordering, asserted through ``repro.obs`` snapshot counters."""

    def test_fragment_stream_reconstructed_via_nack_retries(self, clock):
        from repro.net.channel import FaultProfile
        from repro.net.simulator import Simulation
        from repro.obs import Instrumentation

        obs = Instrumentation(clock=clock.now)
        ah, _win, editor = editor_session(clock)
        ge = FaultProfile.gilbert_elliott(0.10, mean_burst=3.0)
        burst = FaultProfile(
            p_good_bad=ge.p_good_bad,
            p_bad_good=ge.p_bad_good,
            reorder_rate=0.05,
            reorder_delay=0.06,
            duplicate_rate=0.03,
        )
        participant = udp_pair(
            clock, ah, seed=11, instrumentation=obs
        )
        sim = Simulation(ah, clock, instrumentation=obs)
        sim.add_participant(participant)

        # Script the impairment window: clean join, then 8 seconds of
        # bursty loss while the editor generates multi-fragment
        # updates, then a clean tail to let recovery finish.
        link = participant.link.forward
        sim.at(1.0, lambda: link.set_faults(burst))
        sim.at(9.0, lambda: link.set_faults(None))

        def drive(i):
            if i % 6 == 0 and i < 420:
                editor.type_text(f"burst-loss line {i} " + "~" * 40 + "\n")

        sim.add_driver(drive)
        sim.run_seconds(14.0)
        assert sim.run_until_converged(timeout=20.0)

        # The impairment actually happened...
        assert link.datagrams_dropped_burst > 10
        assert link.datagrams_reordered > 0
        assert link.datagrams_duplicated > 0
        # ...and recovery worked through the NACK retry machine.
        snap = sim.snapshot()
        assert _snapshot_total(snap, "recovery.nacks_sent") > 0
        assert _snapshot_total(snap, "recovery.retries") > 0
        assert _snapshot_total(snap, "recovery.recovered") > 0
        assert _snapshot_total(snap, "recovery.gave_up") == 0
        assert ah.nacks_received > 0
        # Fragmented updates crossed the faulty window intact.
        assert participant.updates_applied > 0

    def test_duplicates_suppressed_under_duplication(self, clock):
        from repro.net.channel import FaultProfile
        from repro.obs import Instrumentation

        obs = Instrumentation(clock=clock.now)
        ah, _win, editor = editor_session(clock)
        participant = udp_pair(
            clock, ah, seed=4, instrumentation=obs,
            faults=FaultProfile(duplicate_rate=0.5),
        )

        def drive(i):
            if i % 10 == 0 and i < 200:
                editor.type_text(f"dup {i}\n")

        run_session(clock, ah, [participant], 300, per_round=drive)
        assert participant.converged_with(ah.windows)
        snap = obs.snapshot()
        assert _snapshot_total(snap, "jitter.duplicates") > 0


class TestGiveUpDegradation:
    """Acceptance: with retransmission disabled on the AH, the
    participant provably gives up after its capped retries and
    recovers via a full-update refresh."""

    def test_capped_retries_then_refresh(self, clock):
        from repro.net.channel import FaultProfile
        from repro.net.simulator import Simulation
        from repro.obs import Instrumentation

        obs = Instrumentation(clock=clock.now)
        # The AH silently ignores NACKs (retransmissions off) while the
        # participant *believes* retransmissions are supported — the
        # worst case for the retry machine.  A large reorder_wait keeps
        # the jitter buffer from skipping the hole before the retry
        # schedule exhausts, so only give-up can unblock delivery.
        config = SharingConfig(retransmissions=False)
        ah, _win, editor = editor_session(clock, config)
        participant = udp_pair(
            clock, ah, seed=17, instrumentation=obs,
            ah_supports_retransmissions=True,
            reorder_wait=30.0,
        )
        sim = Simulation(ah, clock, instrumentation=obs)
        sim.add_participant(participant)
        sim.run_seconds(1.0)
        assert participant.converged_with(ah.windows)

        # Script a total blackout around one update: every fragment of
        # it is lost, then the link heals and only keepalives flow.
        link = participant.link.forward
        blackout = FaultProfile(loss_good=1.0, loss_bad=1.0)
        sim.at(1.2, lambda: link.set_faults(blackout))
        sim.at(1.21, lambda: editor.type_text("doomed update " * 30))
        sim.at(1.5, lambda: link.set_faults(None))
        sim.run_seconds(1.0)
        assert not participant.converged_with(ah.windows)

        # NACK retries fire into the void; after the cap the
        # participant degrades to a PLI-driven full refresh.
        assert sim.run_until_converged(timeout=30.0)
        snap = sim.snapshot()
        assert _snapshot_total(snap, "recovery.nacks_sent") > 0
        assert _snapshot_total(snap, "recovery.retries") > 0
        assert _snapshot_total(snap, "recovery.gave_up") > 0
        assert _snapshot_total(snap, "recovery.recovered") == 0
        assert _snapshot_total(snap, "jitter.sequences_abandoned") > 0
        assert participant.recovery.pending == 0  # state fully drained
        assert ah.plis_received > 0
        assert ah.nacks_received > 0  # the AH heard and ignored them
