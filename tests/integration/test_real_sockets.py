"""Live loopback integration: the full stack over real kernel sockets."""

import time

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.net.tcp import TcpListener, connect
from repro.net.udp import UdpEndpoint
from repro.rtp.clock import monotonic_now
from repro.sharing.ah import ApplicationHost
from repro.sharing.participant import Participant
from repro.sharing.transport import TcpSocketTransport, UdpSocketTransport
from repro.surface.geometry import Rect


def pump(ah, participant, seconds=1.0, editor=None, text=None):
    """Drive both sides in real time until converged or timeout."""
    deadline = time.monotonic() + seconds
    typed = False
    while time.monotonic() < deadline:
        if editor is not None and text is not None and not typed:
            editor.type_text(text)
            typed = True
        ah.advance(0.005)
        participant.process_incoming()
        if participant.converged_with(ah.windows):
            return True
        time.sleep(0.001)
    return participant.converged_with(ah.windows)


class TestRealTcp:
    def test_session_over_loopback_tcp(self):
        with TcpListener() as listener:
            client_conn = connect(*listener.address)
            server_conn = None
            deadline = time.monotonic() + 2
            while server_conn is None and time.monotonic() < deadline:
                conns = listener.accept_ready()
                if conns:
                    server_conn = conns[0]
                time.sleep(0.001)
            assert server_conn is not None
            try:
                ah = ApplicationHost(clock=monotonic_now)
                win = ah.windows.create_window(Rect(10, 10, 200, 150))
                editor = TextEditorApp(win)
                ah.apps.attach(editor)
                participant = Participant(
                    "tcp-live",
                    TcpSocketTransport(client_conn),
                    clock=monotonic_now,
                    config=ah.config,
                )
                ah.add_participant(
                    "tcp-live", TcpSocketTransport(server_conn)
                )
                participant.join()
                assert pump(ah, participant, seconds=3.0)
                # Remote typing over the real socket.
                participant.type_text(win.window_id, "REAL SOCKET")
                assert pump(ah, participant, seconds=3.0)
                assert editor.text() == "REAL SOCKET"
            finally:
                client_conn.close()
                server_conn.close()


class TestDisconnect:
    def test_ah_drops_departed_tcp_participant(self):
        with TcpListener() as listener:
            client_conn = connect(*listener.address)
            server_conn = None
            deadline = time.monotonic() + 2
            while server_conn is None and time.monotonic() < deadline:
                conns = listener.accept_ready()
                if conns:
                    server_conn = conns[0]
                time.sleep(0.001)
            assert server_conn is not None
            ah = ApplicationHost(clock=monotonic_now)
            ah.windows.create_window(Rect(0, 0, 80, 60))
            ah.add_participant("leaver", TcpSocketTransport(server_conn))
            assert "leaver" in ah.sessions
            client_conn.close()  # participant vanishes
            deadline = time.monotonic() + 2
            while "leaver" in ah.sessions and time.monotonic() < deadline:
                ah.advance(0.005)
                time.sleep(0.001)
            assert "leaver" not in ah.sessions
            server_conn.close()


class TestRealUdp:
    def test_session_over_loopback_udp(self):
        with UdpEndpoint() as ah_sock, UdpEndpoint() as p_sock:
            ah = ApplicationHost(clock=monotonic_now)
            win = ah.windows.create_window(Rect(0, 0, 160, 120))
            editor = TextEditorApp(win)
            ah.apps.attach(editor)
            ah.add_participant(
                "udp-live", UdpSocketTransport(ah_sock, p_sock.address)
            )
            participant = Participant(
                "udp-live",
                UdpSocketTransport(p_sock, ah_sock.address),
                clock=monotonic_now,
                config=ah.config,
                reorder_wait=0.05,
            )
            participant.join()  # PLI over the real socket
            assert pump(ah, participant, seconds=3.0)
            assert ah.plis_received >= 1
