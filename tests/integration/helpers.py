"""Shared session-building helpers for the integration tests."""

from __future__ import annotations

from repro.net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.sharing.layout import LayoutPolicy
from repro.sharing.participant import Participant
from repro.sharing.transport import DatagramTransport, StreamTransport


def tcp_pair(
    clock: SimulatedClock,
    ah: ApplicationHost,
    participant_id: str = "p1",
    delay: float = 0.01,
    bandwidth_bps: int = 0,
    layout: LayoutPolicy | None = None,
    screen=(1280, 1024),
) -> Participant:
    """Attach one TCP participant to ``ah`` over a simulated stream."""
    link = duplex_reliable(
        ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps), clock.now
    )
    ah.add_participant(
        participant_id, StreamTransport(link.forward, link.backward)
    )
    participant = Participant(
        participant_id,
        StreamTransport(link.backward, link.forward),
        clock=clock.now,
        config=ah.config,
        layout=layout,
        screen_width=screen[0],
        screen_height=screen[1],
    )
    participant.join()
    return participant


def udp_pair(
    clock: SimulatedClock,
    ah: ApplicationHost,
    participant_id: str = "p1",
    delay: float = 0.01,
    loss_rate: float = 0.0,
    bandwidth_bps: int = 0,
    seed: int = 0,
    rate_bps: int | None = None,
    reorder_wait: float = 0.25,
    faults=None,
    instrumentation=None,
    **participant_kwargs,
) -> Participant:
    """Attach one UDP participant to ``ah`` over a simulated lossy path.

    ``faults`` installs a :class:`~repro.net.channel.FaultProfile` on
    the forward (AH→participant) direction; extra keyword arguments are
    forwarded to the :class:`Participant` constructor (e.g. to force
    ``ah_supports_retransmissions`` against a non-retransmitting AH).
    """
    link = duplex_lossy(
        ChannelConfig(
            delay=delay,
            loss_rate=loss_rate,
            bandwidth_bps=bandwidth_bps,
            seed=seed,
        ),
        clock.now,
        faults=faults,
    )
    ah.add_participant(
        participant_id,
        DatagramTransport(link.forward, link.backward),
        rate_bps=rate_bps,
    )
    participant_kwargs.setdefault(
        "ah_supports_retransmissions", ah.config.retransmissions
    )
    participant = Participant(
        participant_id,
        DatagramTransport(link.backward, link.forward),
        clock=clock.now,
        config=ah.config,
        reorder_wait=reorder_wait,
        instrumentation=instrumentation,
        **participant_kwargs,
    )
    participant.link = link
    participant.join()
    return participant


def run_session(
    clock: SimulatedClock,
    ah: ApplicationHost,
    participants: list[Participant],
    rounds: int,
    dt: float = 0.02,
    per_round=None,
) -> None:
    """Advance AH + participants in lockstep for ``rounds`` steps."""
    for i in range(rounds):
        if per_round is not None:
            per_round(i)
        ah.advance(dt)
        clock.advance(dt)
        for participant in participants:
            participant.process_incoming()


def settle(clock, ah, participants, rounds: int = 100, dt: float = 0.02):
    """Run with no new app activity until traffic drains."""
    run_session(clock, ah, participants, rounds, dt)
