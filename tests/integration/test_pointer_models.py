"""The two mouse-pointer models of section 4.2, end to end.

"Mouse pointer images can be transmitted as RegionUpdate messages or
they may be transmitted seperately as MousePointerInfo messages.  The
AH decides which mouse model to use.  The participants MUST support
both mouse models."
"""

import numpy as np
import pytest

from repro.apps.whiteboard import WhiteboardApp
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import PointerMode, SharingConfig
from repro.surface.geometry import Rect

from .helpers import run_session, settle, tcp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


def pointer_session(clock, mode: PointerMode):
    config = SharingConfig(pointer_mode=mode, adaptive_codec=False)
    ah = ApplicationHost(config=config, clock=clock.now)
    win = ah.windows.create_window(Rect(100, 100, 400, 300))
    ah.apps.attach(WhiteboardApp(win))
    participant = tcp_pair(clock, ah)
    settle(clock, ah, [participant], 40)
    return ah, win, participant


class TestExplicitModel:
    def test_pointer_info_messages_flow(self, clock):
        ah, win, participant = pointer_session(clock, PointerMode.EXPLICIT)
        participant.move_mouse(win.window_id, 50, 60)
        settle(clock, ah, [participant], 40)
        assert participant.stats.pointer.packets > 0
        assert participant.pointer_position == (150, 160)
        assert participant.pointer_image is not None

    def test_position_only_after_image_stored(self, clock):
        """Once the icon is stored, moves ship as 12-byte messages."""
        ah, win, participant = pointer_session(clock, PointerMode.EXPLICIT)
        participant.move_mouse(win.window_id, 10, 10)
        settle(clock, ah, [participant], 30)
        bytes_before = participant.stats.pointer.wire_bytes
        packets_before = participant.stats.pointer.packets
        participant.move_mouse(win.window_id, 20, 20)
        settle(clock, ah, [participant], 30)
        delta_bytes = participant.stats.pointer.wire_bytes - bytes_before
        delta_packets = participant.stats.pointer.packets - packets_before
        assert delta_packets >= 1
        assert delta_bytes / delta_packets < 40  # position-only payloads

    def test_window_pixels_unpolluted(self, clock):
        """In the explicit model the pointer never enters window pixels."""
        ah, win, participant = pointer_session(clock, PointerMode.EXPLICIT)
        participant.move_mouse(win.window_id, 200, 150)
        settle(clock, ah, [participant], 40)
        assert participant.converged_with(ah.windows)  # pure app pixels


class TestInBandModel:
    def test_pointer_painted_into_updates(self, clock):
        ah, win, participant = pointer_session(clock, PointerMode.IN_BAND)
        participant.move_mouse(win.window_id, 200, 150)
        settle(clock, ah, [participant], 40)
        # No explicit pointer messages at all.
        assert participant.stats.pointer.packets == 0
        assert participant.pointer_position is None
        # But the arrow's black tip is in the participant's window
        # pixels at the pointer position (window-local 200,150).
        local = participant.windows[win.window_id]
        assert local.surface.get_pixel(200, 150) == (0, 0, 0, 255)

    def test_old_position_repainted_on_move(self, clock):
        ah, win, participant = pointer_session(clock, PointerMode.IN_BAND)
        participant.move_mouse(win.window_id, 50, 50)
        settle(clock, ah, [participant], 40)
        participant.move_mouse(win.window_id, 300, 200)
        settle(clock, ah, [participant], 40)
        local = participant.windows[win.window_id]
        # Old footprint restored to whiteboard white, new tip black.
        assert local.surface.get_pixel(50, 50) == (255, 255, 255, 255)
        assert local.surface.get_pixel(300, 200) == (0, 0, 0, 255)

    def test_participant_screen_equals_ah_screen_plus_pointer(self, clock):
        """In-band model: participant pixels == AH composite with the
        pointer painted on (the pointer is part of the picture)."""
        ah, win, participant = pointer_session(clock, PointerMode.IN_BAND)
        participant.move_mouse(win.window_id, 180, 120)
        settle(clock, ah, [participant], 40)
        ah_screen = ah.windows.composite()
        ah.pointer.paint_onto(ah_screen)
        local = participant.render_screen(include_pointer=False)
        assert ah_screen.identical_to(local)

    def test_full_refresh_carries_pointer_pixels(self, clock):
        ah, win, participant = pointer_session(clock, PointerMode.IN_BAND)
        participant.move_mouse(win.window_id, 120, 80)
        settle(clock, ah, [participant], 40)
        participant.send_pli()
        settle(clock, ah, [participant], 40)
        local = participant.windows[win.window_id]
        assert local.surface.get_pixel(120, 80) == (0, 0, 0, 255)
        assert participant.stats.pointer.packets == 0
