"""Failure injection: malformed and adversarial input never crashes.

"Errors should never pass silently. Unless explicitly silenced." — at
the trust boundary (bytes off the network) both endpoints must absorb
garbage, truncation, and protocol-shaped-but-invalid input without
raising, while counting what they reject.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.text_editor import TextEditorApp
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.rtp.packet import RtpPacket
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import PT_HIP, PT_REMOTING
from repro.sharing.participant import Participant
from repro.sharing.transport import StreamTransport
from repro.surface.geometry import Rect

from .helpers import settle, tcp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


def raw_link(clock):
    """A participant plus a raw byte-level feeder transport."""
    link = duplex_reliable(ChannelConfig(delay=0.0), clock.now)
    feeder = StreamTransport(link.forward, link.backward)
    participant = Participant(
        "victim", StreamTransport(link.backward, link.forward), clock=clock.now
    )
    return feeder, participant


class TestParticipantRobustness:
    @given(st.lists(st.binary(min_size=0, max_size=200), max_size=10))
    @settings(max_examples=50)
    def test_random_garbage_packets(self, payloads):
        clock = SimulatedClock()
        feeder, participant = raw_link(clock)
        for payload in payloads:
            feeder.send_packet(payload)
        participant.process_incoming()  # must not raise

    @given(st.binary(min_size=0, max_size=100))
    @settings(max_examples=50)
    def test_valid_rtp_random_payload(self, body):
        """Well-formed RTP with garbage remoting payloads."""
        clock = SimulatedClock()
        feeder, participant = raw_link(clock)
        packet = RtpPacket(PT_REMOTING, 1, 2, 3, body, marker=True)
        feeder.send_packet(packet.encode())
        participant.process_incoming()

    def test_truncated_window_records(self, clock):
        feeder, participant = raw_link(clock)
        # Message type 1 (WMI) but a ragged record block.
        payload = bytes([1, 0, 0, 0]) + b"\x00" * 13
        feeder.send_packet(RtpPacket(PT_REMOTING, 1, 2, 3, payload).encode())
        participant.process_incoming()
        assert participant.windows == {}

    def test_unknown_message_type_ignored(self, clock):
        feeder, participant = raw_link(clock)
        payload = bytes([200, 0, 0, 0]) + b"\x00" * 16
        feeder.send_packet(RtpPacket(PT_REMOTING, 1, 2, 3, payload).encode())
        assert participant.process_incoming() == 0

    def test_wrong_payload_type_ignored(self, clock):
        feeder, participant = raw_link(clock)
        feeder.send_packet(RtpPacket(111, 1, 2, 3, b"\x01\x00\x00\x00").encode())
        assert participant.process_incoming() == 0


class TestAhRobustness:
    @given(st.lists(st.binary(min_size=0, max_size=120), max_size=10))
    @settings(max_examples=50)
    def test_garbage_to_ah(self, payloads):
        clock = SimulatedClock()
        ah = ApplicationHost(clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 50, 50))
        link = duplex_reliable(ChannelConfig(delay=0.0), clock.now)
        ah.add_participant("p1", StreamTransport(link.forward, link.backward))
        attacker = StreamTransport(link.backward, link.forward)
        for payload in payloads:
            attacker.send_packet(payload)
        ah.process_incoming()  # must not raise

    @given(st.binary(min_size=0, max_size=60))
    @settings(max_examples=50)
    def test_hip_shaped_garbage(self, body):
        clock = SimulatedClock()
        ah = ApplicationHost(clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 50, 50))
        link = duplex_reliable(ChannelConfig(delay=0.0), clock.now)
        ah.add_participant("p1", StreamTransport(link.forward, link.backward))
        attacker = StreamTransport(link.backward, link.forward)
        for msg_type in (121, 124, 127):
            payload = bytes([msg_type, 0, 0, 0]) + body
            attacker.send_packet(RtpPacket(PT_HIP, 1, 2, 3, payload).encode())
        try:
            ah.process_incoming()
        except Exception as exc:  # pragma: no cover
            pytest.fail(f"AH crashed on malformed HIP input: {exc!r}")

    def test_rtcp_shaped_garbage(self, clock):
        ah = ApplicationHost(clock=clock.now)
        link = duplex_reliable(ChannelConfig(delay=0.0), clock.now)
        ah.add_participant("p1", StreamTransport(link.forward, link.backward))
        attacker = StreamTransport(link.backward, link.forward)
        # Looks like RTCP (PT 205) but truncated/invalid.
        attacker.send_packet(b"\x81\xcd\x00\xff")
        attacker.send_packet(b"\x81\xce")
        ah.process_incoming()  # must not raise


class TestSessionSurvivesChaos:
    def test_session_keeps_working_after_garbage(self, clock):
        """A session hit by garbage keeps converging afterwards."""
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        # Garbage in both directions through fresh raw handles.
        ah.sessions["p1"].transport.send_packet(b"\xde\xad\xbe\xef")
        participant.transport.send_packet(b"\x00" * 9)
        settle(clock, ah, [participant], 10)
        editor.type_text("still alive")
        settle(clock, ah, [participant], 40)
        assert participant.converged_with(ah.windows)
