"""Security-relevant behaviour (section 8 and scattered MUSTs).

Application sharing "inherently exposes the shared applications to
risks by malicious participants" — these tests pin down the defensive
behaviour the implementation provides at the protocol layer:
coordinate legitimacy, floor gating as default-deny, unpredictable
initial timestamps/sequence numbers, and bounded resource usage under
hostile input.
"""

import random

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.bfcp.server import FloorControlServer
from repro.rtp.clock import SimulatedClock
from repro.rtp.session import RtpSender
from repro.sharing.ah import ApplicationHost
from repro.surface.geometry import Rect

from .helpers import settle, tcp_pair


@pytest.fixture
def clock():
    return SimulatedClock()


class TestUnpredictableInitialValues:
    def test_initial_timestamps_differ_across_sessions(self):
        """'the initial value of the timestamp MUST be random
        (unpredictable) to make known-plaintext attacks more
        difficult' (sections 5.1.1, 6.1.1)."""
        stamps = {
            RtpSender(99, rng=random.Random(seed)).clock.initial_timestamp
            for seed in range(12)
        }
        assert len(stamps) >= 10

    def test_initial_sequence_numbers_differ(self):
        seqs = {
            RtpSender(99, rng=random.Random(seed))._next_seq
            for seed in range(12)
        }
        assert len(seqs) >= 10

    def test_ssrcs_differ(self):
        ssrcs = {
            RtpSender(99, rng=random.Random(seed)).ssrc for seed in range(12)
        }
        assert len(ssrcs) >= 10


class TestInputValidationSurface:
    def test_event_outside_every_window_never_reaches_app(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(500, 500, 100, 100))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        before = editor.events_handled
        # Probe many points outside the shared window.
        for x, y in ((0, 0), (499, 499), (601, 601), (5000, 0), (0, 5000)):
            participant.send_raw_mouse(x, y)
        settle(clock, ah, [participant], 30)
        assert editor.events_handled == before
        assert ah.injector.stats.rejected_out_of_window == 5

    def test_events_for_closed_window_rejected(self, clock):
        ah = ApplicationHost(clock=clock.now)
        win = ah.windows.create_window(Rect(0, 0, 100, 100))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        wid = win.window_id
        ah.apps.detach(wid)
        ah.windows.close_window(wid)
        settle(clock, ah, [participant], 30)
        participant.type_text(wid, "ghost input")
        settle(clock, ah, [participant], 30)
        assert editor.text() == ""

    def test_floor_default_deny(self, clock):
        """With BFCP wired, a participant who never requested the floor
        controls nothing — deny is the default state."""
        floor = FloorControlServer()
        ah = ApplicationHost(clock=clock.now, floor_check=floor.floor_check)
        win = ah.windows.create_window(Rect(0, 0, 200, 150))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        participant = tcp_pair(clock, ah)
        settle(clock, ah, [participant], 30)
        participant.type_text(win.window_id, "unauthorised")
        participant.click(win.window_id, 10, 10)
        settle(clock, ah, [participant], 30)
        assert editor.text() == ""
        assert ah.injector.stats.accepted == 0


class TestResourceBounds:
    def test_retransmit_cache_is_bounded(self, clock):
        """A NACK flood cannot make the AH cache grow without bound."""
        from repro.sharing.retransmit import RetransmitCache

        cache = RetransmitCache(capacity=64)
        for seq in range(10_000):
            cache.store(seq, b"x" * 100)
        assert len(cache) == 64

    def test_deframer_bounded_against_length_bomb(self):
        """A stream claiming a huge frame cannot exhaust memory."""
        from repro.rtp.framing import FramingError, StreamDeframer

        deframer = StreamDeframer(max_buffer=4096)
        with pytest.raises(FramingError):
            for _ in range(100):
                deframer.feed(b"\xff\xff" + b"A" * 1024)

    def test_jitter_buffer_capacity_bounded(self, clock):
        from repro.rtp.jitter_buffer import JitterBuffer
        from repro.rtp.packet import RtpPacket

        buf = JitterBuffer(now=clock.now, max_wait=100.0, capacity=32)
        # Adversarial stream with a permanent hole; the caller drains
        # pop_ready() as the receive loop does.
        buf.insert(RtpPacket(99, 0, 0, 1, b""))
        released = len(buf.pop_ready())
        for seq in range(2, 500):
            buf.insert(RtpPacket(99, seq, 0, 1, b""))
            released += len(buf.pop_ready())
        # Slots stay bounded; everything inserted is eventually released.
        assert len(buf._slots) <= 32
        assert released + len(buf._slots) == 499

    def test_recovery_state_pruned(self, clock):
        """The participant's recovery-manager maps cannot grow unboundedly."""
        ah = ApplicationHost(clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 50, 50))
        from .helpers import udp_pair

        participant = udp_pair(clock, ah)
        settle(clock, ah, [participant], 20)
        recovery = participant.recovery
        # Simulate a long-lived recovered-seq memory and trigger the
        # prune path with a genuine gap just past the live stream.
        for seq in range(5000):
            recovery._recovered_at[seq] = -100.0
        gaps = participant.receiver.gaps
        highest = gaps._highest
        assert highest is not None
        gaps.record((highest + 3) & 0xFFFF)  # leaves holes at +1, +2
        participant.process_incoming()
        assert participant.nacks_sent >= 1
        assert len(recovery._recovered_at) < 5000
        # Pending retry state is bounded by the gap detector's window.
        assert recovery.pending <= participant.receiver.gaps.max_tracked
