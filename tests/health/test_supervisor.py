"""TaskSupervisor behaviour: restart, backoff, give-up, teardown."""

import asyncio

import pytest

from repro.health import RestartPolicy, TaskSupervisor
from repro.obs import Instrumentation

FAST = RestartPolicy(initial_backoff=0.0, max_restarts=3, reset_after=5.0)


def run(coro):
    return asyncio.run(coro)


class TestRestart:
    def test_crash_restarts_until_clean_exit(self):
        sup = TaskSupervisor(FAST)
        attempts = []

        async def pump():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise RuntimeError("boom")

        async def main():
            await sup.supervise(pump, "pump")

        run(main())
        assert attempts == [0, 1, 2]
        assert sup.crashes == 2
        assert sup.restarts == 2
        assert sup.give_ups == 0

    def test_clean_return_is_not_a_crash(self):
        sup = TaskSupervisor(FAST)

        async def pump():
            return None

        async def main():
            await sup.supervise(pump, "pump")

        run(main())
        assert sup.snapshot() == {"crashes": 0, "restarts": 0, "give_ups": 0}


class TestGiveUp:
    def test_exhausted_budget_fires_on_give_up_with_final_error(self):
        sup = TaskSupervisor(RestartPolicy(initial_backoff=0.0,
                                           max_restarts=2))
        seen = []

        async def pump():
            raise RuntimeError("persistent")

        async def main():
            await sup.supervise(pump, "pump", on_give_up=seen.append)

        run(main())
        # max_restarts=2 tolerates 2 restarts: 3 crashes total.
        assert sup.crashes == 3
        assert sup.restarts == 2
        assert sup.give_ups == 1
        assert len(seen) == 1
        assert isinstance(seen[0], RuntimeError)

    def test_zero_restarts_means_one_strike(self):
        sup = TaskSupervisor(RestartPolicy(initial_backoff=0.0,
                                           max_restarts=0))

        async def pump():
            raise ValueError("no")

        async def main():
            await sup.supervise(pump, "pump")

        run(main())
        assert sup.crashes == 1
        assert sup.restarts == 0
        assert sup.give_ups == 1


class TestTeardown:
    def test_cancellation_passes_through_without_restart(self):
        sup = TaskSupervisor(FAST)
        started = asyncio.Event()

        async def pump():
            started.set()
            await asyncio.sleep(3600)

        async def main():
            task = sup.supervise(pump, "pump")
            await started.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        run(main())
        assert sup.snapshot() == {"crashes": 0, "restarts": 0, "give_ups": 0}


class TestPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RestartPolicy(initial_backoff=0.1, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(initial_backoff=-1.0)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(reset_after=0.0)

    def test_long_clean_stretch_resets_consecutive_counter(self):
        sup = TaskSupervisor(
            RestartPolicy(initial_backoff=0.0, max_restarts=1,
                          reset_after=0.0001)
        )
        attempts = []

        async def pump():
            attempts.append(len(attempts))
            if len(attempts) >= 4:
                return
            await asyncio.sleep(0.01)  # survive past reset_after
            raise RuntimeError("periodic")

        async def main():
            await sup.supervise(pump, "pump")

        run(main())
        # Three crashes but never two *consecutive* ones: no give-up.
        assert sup.crashes == 3
        assert sup.give_ups == 0


def test_metrics_flow_to_instrumentation():
    obs = Instrumentation()
    sup = TaskSupervisor(RestartPolicy(initial_backoff=0.0, max_restarts=1),
                         instrumentation=obs)

    async def pump():
        raise RuntimeError("boom")

    async def main():
        await sup.supervise(pump, "pump")

    run(main())
    assert obs.registry.get("health.task_crashes").value == 2
    assert obs.registry.get("health.task_restarts").value == 1
    assert obs.registry.get("health.task_give_ups").value == 1
