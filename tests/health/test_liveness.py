"""LivenessTracker unit behaviour: thresholds, edges, revival."""

import pytest

from repro.health import LivenessConfig, LivenessTracker, PeerState
from repro.obs import Instrumentation


@pytest.fixture
def tracker(clock):
    return LivenessTracker(
        clock, LivenessConfig(suspect_after=2.0, dead_after=6.0)
    )


class TestThresholds:
    def test_fresh_peer_is_alive(self, clock, tracker):
        tracker.track("p")
        assert tracker.state_of("p") is PeerState.ALIVE
        assert not tracker.poll()

    def test_silence_walks_alive_suspect_dead(self, clock, tracker):
        tracker.track("p")
        clock.advance(2.0)
        report = tracker.poll()
        assert report.newly_suspect == ["p"]
        assert tracker.state_of("p") is PeerState.SUSPECT
        clock.advance(4.0)
        report = tracker.poll()
        assert report.newly_dead == ["p"]
        assert tracker.state_of("p") is PeerState.DEAD
        assert tracker.died_at("p") == pytest.approx(6.0)

    def test_jump_straight_to_dead_skips_suspect_edge(self, clock, tracker):
        # A poll gap longer than both thresholds reports only death.
        tracker.track("p")
        clock.advance(10.0)
        report = tracker.poll()
        assert report.newly_dead == ["p"]
        assert report.newly_suspect == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LivenessConfig(suspect_after=0.0)
        with pytest.raises(ValueError):
            LivenessConfig(suspect_after=5.0, dead_after=5.0)


class TestEdgeTriggering:
    def test_dead_peer_reported_exactly_once(self, clock, tracker):
        tracker.track("p")
        clock.advance(6.0)
        assert tracker.poll().newly_dead == ["p"]
        clock.advance(60.0)
        assert not tracker.poll()
        assert tracker.tracked == 1  # stays tracked until forget

    def test_suspect_reported_exactly_once(self, clock, tracker):
        tracker.track("p")
        clock.advance(2.0)
        assert tracker.poll().newly_suspect == ["p"]
        clock.advance(1.0)
        assert not tracker.poll()


class TestRevival:
    def test_suspect_speaking_revives(self, clock, tracker):
        tracker.track("p")
        clock.advance(3.0)
        tracker.poll()
        tracker.note_alive("p")
        report = tracker.poll()
        assert report.revived == ["p"]
        assert tracker.state_of("p") is PeerState.ALIVE
        assert tracker.revivals == 1

    def test_dead_peer_kept_by_owner_can_revive(self, clock, tracker):
        tracker.track("p")
        clock.advance(6.0)
        tracker.poll()
        tracker.note_alive("p")
        assert tracker.state_of("p") is PeerState.ALIVE
        assert tracker.died_at("p") is None

    def test_alive_chatter_is_not_a_revival(self, clock, tracker):
        tracker.track("p")
        tracker.note_alive("p")
        assert not tracker.poll()
        assert tracker.revivals == 0


class TestMembership:
    def test_note_alive_auto_tracks(self, clock, tracker):
        tracker.note_alive("new")
        assert tracker.state_of("new") is PeerState.ALIVE

    def test_forget_stops_reporting(self, clock, tracker):
        tracker.track("p")
        tracker.forget("p")
        clock.advance(60.0)
        assert not tracker.poll()
        assert tracker.state_of("p") is None
        tracker.forget("p")  # idempotent

    def test_peers_in_buckets_by_state(self, clock, tracker):
        tracker.track("a")
        clock.advance(3.0)
        tracker.track("b")
        tracker.poll()
        assert tracker.peers_in(PeerState.SUSPECT) == ["a"]
        assert tracker.peers_in(PeerState.ALIVE) == ["b"]


def test_metrics_and_snapshot(clock):
    obs = Instrumentation(clock=clock.now)
    tracker = LivenessTracker(
        clock, LivenessConfig(suspect_after=1.0, dead_after=2.0),
        instrumentation=obs,
    )
    tracker.track("a")
    tracker.track("b")
    clock.advance(1.0)
    tracker.note_alive("b")
    tracker.poll()  # a suspect
    tracker.note_alive("a")  # revival
    clock.advance(2.0)
    tracker.poll()  # both dead
    snap = tracker.snapshot()
    assert snap["tracked"] == 2
    assert snap["dead"] == 2
    assert snap["suspects"] == 1
    assert snap["revivals"] == 1
    assert snap["deaths"] == 2
    assert obs.registry.get("health.peers_died").value == 2
    assert obs.registry.get("health.peers_suspected").value == 1
    assert obs.registry.get("health.peers_revived").value == 1
    assert obs.registry.get("health.peers_tracked").value == 2
