"""AdmissionControl behaviour: capacity checks and the load ladder."""

import pytest

from repro.health import AdmissionControl, AdmissionDecision, OverloadConfig
from repro.health.admission import LOAD_LEVELS
from repro.obs import Instrumentation


class TestSessions:
    def test_under_limit_admits(self):
        ac = AdmissionControl(OverloadConfig(max_sessions=2))
        assert ac.admit_session(1) is AdmissionDecision.ADMIT
        assert ac.sessions_shed == 0

    def test_at_limit_sheds_and_counts(self):
        ac = AdmissionControl(OverloadConfig(max_sessions=2))
        assert ac.admit_session(2) is AdmissionDecision.SHED
        assert ac.sessions_shed == 1

    def test_none_means_unlimited(self):
        ac = AdmissionControl(OverloadConfig())
        assert ac.admit_session(10_000) is AdmissionDecision.ADMIT


class TestJoins:
    def test_at_capacity_sheds(self):
        ac = AdmissionControl(OverloadConfig(max_participants=10))
        assert ac.admit_join(9) is AdmissionDecision.ADMIT
        assert ac.admit_join(10) is AdmissionDecision.SHED
        assert ac.joins_shed == 1


class TestLadder:
    def test_levels_by_occupancy(self):
        ac = AdmissionControl(
            OverloadConfig(max_participants=10, degrade_at=0.8)
        )
        assert ac.load_level(0) == "ok"
        assert ac.load_level(7) == "ok"
        assert ac.load_level(8) == "degraded"
        assert ac.load_level(10) == "overloaded"

    def test_no_capacity_axis_is_always_ok(self):
        ac = AdmissionControl(OverloadConfig())
        assert ac.load_level(1_000_000) == "ok"

    def test_gauge_tracks_ladder_index(self):
        obs = Instrumentation()
        ac = AdmissionControl(
            OverloadConfig(max_participants=10), instrumentation=obs
        )
        ac.load_level(9)
        gauge = obs.registry.get("health.load_level")
        assert gauge.value == LOAD_LEVELS.index("degraded")
        ac.load_level(2)
        assert gauge.value == LOAD_LEVELS.index("ok")


def test_config_validation():
    with pytest.raises(ValueError):
        OverloadConfig(max_sessions=0)
    with pytest.raises(ValueError):
        OverloadConfig(max_participants=0)
    with pytest.raises(ValueError):
        OverloadConfig(degrade_at=0.0)
    with pytest.raises(ValueError):
        OverloadConfig(degrade_at=1.5)
    with pytest.raises(ValueError):
        OverloadConfig(degrade_rate_factor=0.0)


def test_snapshot_rolls_up_shed_counts():
    ac = AdmissionControl(
        OverloadConfig(max_sessions=1, max_participants=1)
    )
    ac.admit_session(1)
    ac.admit_join(1)
    ac.admit_join(1)
    assert ac.snapshot() == {
        "max_sessions": 1,
        "max_participants": 1,
        "sessions_shed": 1,
        "joins_shed": 2,
    }
