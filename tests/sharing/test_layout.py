"""Tests for participant layout policies beyond the paper-figure cases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window_info import WindowRecord
from repro.sharing.layout import CompactedLayout, OriginalLayout, ShiftedLayout
from repro.surface.geometry import Rect

records = st.builds(
    WindowRecord,
    window_id=st.integers(0, 100),
    group_id=st.integers(0, 5),
    left=st.integers(0, 1200),
    top=st.integers(0, 900),
    width=st.integers(10, 400),
    height=st.integers(10, 300),
)


def unique_ids(record_list):
    seen = {}
    for record in record_list:
        seen[record.window_id] = record
    return list(seen.values())


class TestOriginal:
    def test_identity(self):
        rs = [WindowRecord(1, 0, 50, 60, 10, 10)]
        placements = OriginalLayout().place(rs, Rect(0, 0, 1280, 1024))
        assert placements[1].as_tuple() == (50, 60)

    def test_empty(self):
        assert OriginalLayout().place([], Rect(0, 0, 100, 100)) == {}


class TestShifted:
    def test_auto_brings_to_origin(self):
        rs = [
            WindowRecord(1, 0, 300, 200, 10, 10),
            WindowRecord(2, 0, 500, 400, 10, 10),
        ]
        placements = ShiftedLayout(auto=True).place(rs, Rect(0, 0, 1280, 1024))
        assert placements[1].as_tuple() == (0, 0)
        assert placements[2].as_tuple() == (200, 200)

    @given(st.lists(records, min_size=1, max_size=5))
    @settings(max_examples=30)
    def test_relations_preserved(self, record_list):
        rs = unique_ids(record_list)
        placements = ShiftedLayout(auto=True).place(rs, Rect(0, 0, 4000, 4000))
        for a in rs:
            for b in rs:
                dx_ah = b.left - a.left
                dx_local = placements[b.window_id].x - placements[a.window_id].x
                assert dx_ah == dx_local

    def test_empty(self):
        assert ShiftedLayout().place([], Rect(0, 0, 100, 100)) == {}


class TestCompacted:
    @given(st.lists(records, min_size=1, max_size=5))
    @settings(max_examples=30)
    def test_windows_fit_small_screen(self, record_list):
        rs = unique_ids(record_list)
        screen = Rect(0, 0, 640, 480)
        placements = CompactedLayout().place(rs, screen)
        for record in rs:
            p = placements[record.window_id]
            assert p.x >= 0 and p.y >= 0
            # Window fits unless it is itself bigger than the screen, in
            # which case it is pinned to the origin.
            if record.width <= 640:
                assert p.x + record.width <= 640
            else:
                assert p.x == 0
            if record.height <= 480:
                assert p.y + record.height <= 480
            else:
                assert p.y == 0

    def test_no_compaction_needed_keeps_relative_positions(self):
        rs = [
            WindowRecord(1, 0, 0, 0, 50, 50),
            WindowRecord(2, 0, 100, 100, 50, 50),
        ]
        placements = CompactedLayout().place(rs, Rect(0, 0, 1280, 1024))
        assert placements[1].as_tuple() == (0, 0)
        assert placements[2].as_tuple() == (100, 100)
