"""SignallingBinding: service-owned queues replacing hand-wired inboxes."""

from collections import deque

import pytest

from repro.sharing import SignallingBinding


class FakeEndpoint:
    """Records received texts and the transport it was attached with."""

    def __init__(self):
        self.received = []
        self.send = None

    def attach_transport(self, send):
        self.send = send

    def receive(self, text):
        self.received.append(text)


class TestQueues:
    def test_queues_default_to_deques(self):
        binding = SignallingBinding("alice")
        assert isinstance(binding.to_remote, deque)
        assert isinstance(binding.to_service, deque)

    def test_send_helpers_enqueue_in_each_direction(self):
        binding = SignallingBinding("alice")
        binding.send_to_remote("INVITE")
        binding.send_to_service("200 OK")
        assert list(binding.to_remote) == ["INVITE"]
        assert list(binding.to_service) == ["200 OK"]

    def test_legacy_list_queues_still_work(self):
        # The deprecated 4-arg invite shim wraps caller-owned lists.
        outbox, inbox = [], []
        binding = SignallingBinding("bob", to_remote=outbox, to_service=inbox)
        binding.send_to_remote("a")
        binding.send_to_remote("b")
        assert outbox == ["a", "b"]
        endpoint = FakeEndpoint()
        binding.attach_remote(endpoint)
        assert binding.pump_remote() == 2
        assert endpoint.received == ["a", "b"]
        assert outbox == []


class TestRemoteSide:
    def test_attach_remote_wires_outbound_to_service_queue(self):
        binding = SignallingBinding("alice")
        endpoint = FakeEndpoint()
        assert binding.attach_remote(endpoint) is endpoint
        assert binding.remote is endpoint
        endpoint.send("BYE")  # the attached transport
        assert list(binding.to_service) == ["BYE"]

    def test_pump_remote_without_endpoint_raises(self):
        binding = SignallingBinding("alice")
        binding.send_to_remote("INVITE")
        with pytest.raises(ValueError):
            binding.pump_remote()

    def test_pump_remote_delivers_in_order_and_counts(self):
        binding = SignallingBinding("alice")
        endpoint = FakeEndpoint()
        binding.attach_remote(endpoint)
        for text in ("one", "two", "three"):
            binding.send_to_remote(text)
        assert binding.pump_remote() == 3
        assert endpoint.received == ["one", "two", "three"]
        assert binding.pump_remote() == 0  # idempotent when drained


class TestServiceDrain:
    def test_drain_delivers_all_when_receive_returns_true(self):
        binding = SignallingBinding("alice")
        for text in ("a", "b"):
            binding.send_to_service(text)
        seen = []
        binding.drain_to_service(lambda t: seen.append(t) or True)
        assert seen == ["a", "b"]
        assert not binding.to_service

    def test_drain_stops_when_receive_returns_false(self):
        # The service returns False when a BYE tears the call down
        # mid-drain; later messages must stay queued, not be lost.
        binding = SignallingBinding("alice")
        for text in ("BYE", "late"):
            binding.send_to_service(text)
        seen = []
        binding.drain_to_service(lambda t: seen.append(t) and False)
        assert seen == ["BYE"]
        assert list(binding.to_service) == ["late"]
