"""Tests for the AH capture pipeline."""

import numpy as np
import pytest

from repro.sharing.capture import CapturePipeline, window_manager_info
from repro.surface.cursor import PointerState
from repro.surface.framebuffer import WHITE
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


@pytest.fixture
def wm():
    return WindowManager(1280, 1024)


class TestWindowManagerInfoSnapshot:
    def test_snapshot_matches_manager(self, wm):
        wm.create_window(Rect(10, 20, 100, 50), group_id=3)
        wm.create_window(Rect(200, 100, 60, 60))
        info = window_manager_info(wm)
        assert info.window_ids() == wm.window_ids()
        assert info.records[0].group_id == 3
        assert info.records[0].left == 10


class TestFirstCapture:
    def test_first_capture_has_wmi_and_content(self, wm):
        wm.create_window(Rect(0, 0, 50, 50))
        pipeline = CapturePipeline(wm)
        frame = pipeline.capture()
        assert frame.window_info is not None
        assert frame.updates  # full window content
        assert frame.damage_area() == 50 * 50

    def test_quiet_capture_is_empty(self, wm):
        wm.create_window(Rect(0, 0, 50, 50))
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        frame = pipeline.capture()
        assert frame.is_empty


class TestGeometryTriggers:
    def test_move_triggers_wmi(self, wm):
        w = wm.create_window(Rect(0, 0, 50, 50))
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        wm.move_window(w.window_id, 100, 100)
        frame = pipeline.capture()
        assert frame.window_info is not None

    def test_restack_triggers_wmi(self, wm):
        a = wm.create_window(Rect(0, 0, 50, 50))
        wm.create_window(Rect(0, 0, 50, 50))
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        wm.raise_window(a.window_id)
        assert pipeline.capture().window_info is not None

    def test_close_triggers_wmi_without_window(self, wm):
        w = wm.create_window(Rect(0, 0, 50, 50))
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        wm.close_window(w.window_id)
        frame = pipeline.capture()
        assert frame.window_info is not None
        assert frame.window_info.records == ()


class TestDamageCapture:
    def test_updates_carry_absolute_coords(self, wm):
        w = wm.create_window(Rect(300, 200, 100, 100))
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        w.fill(WHITE, Rect(10, 20, 5, 5))
        frame = pipeline.capture()
        assert len(frame.updates) == 1
        update = frame.updates[0]
        assert (update.left, update.top) == (310, 220)
        assert update.pixels.shape == (5, 5, 4)
        assert (update.pixels == 255).all()

    def test_occluded_damage_not_captured(self, wm):
        bottom = wm.create_window(Rect(0, 0, 100, 100))
        wm.create_window(Rect(0, 0, 100, 100))  # fully covers
        pipeline = CapturePipeline(wm)
        pipeline.capture()
        bottom.fill(WHITE)
        frame = pipeline.capture()
        assert all(u.window_id != bottom.window_id for u in frame.updates)

    def test_rect_cap_respected(self, wm):
        w = wm.create_window(Rect(0, 0, 500, 500))
        pipeline = CapturePipeline(wm, max_update_rects=2)
        pipeline.capture()
        for i in range(8):  # 8 scattered damage spots
            w.fill(WHITE, Rect(i * 60, i * 60, 5, 5))
        frame = pipeline.capture()
        assert len(frame.updates) <= 2


class TestScrollCapture:
    def _scroll_window(self, wm, pipeline):
        w = wm.create_window(Rect(0, 0, 200, 200))
        # Distinct row stripes so the shift is detectable.
        for y in range(200):
            w.fill(((y * 13) % 256, (y * 7) % 256, 0, 255), Rect(0, y, 200, 1))
        pipeline.capture()
        # Scroll content up by 16 rows; repaint the exposed band.
        w.scroll(Rect(0, 0, 200, 200), -16)
        for y in range(184, 200):
            w.fill((1, 2, 3, 255), Rect(0, y, 200, 1))
        w.add_damage(Rect(0, 0, 200, 200))
        return w

    def test_scroll_detected_as_move(self, wm):
        pipeline = CapturePipeline(wm, scroll_detection=True)
        self._scroll_window(wm, pipeline)
        frame = pipeline.capture()
        assert len(frame.moves) == 1
        move = frame.moves[0]
        assert move.height == 184
        assert pipeline.scrolls_detected == 1
        # Update area shrinks to roughly the exposed band.
        assert frame.damage_area() <= 16 * 200 * 2

    def test_scroll_detection_disabled(self, wm):
        pipeline = CapturePipeline(wm, scroll_detection=False)
        self._scroll_window(wm, pipeline)
        frame = pipeline.capture()
        assert frame.moves == []
        assert frame.damage_area() == 200 * 200


class TestPointerCapture:
    def test_pointer_move_captured(self, wm):
        pointer = PointerState()
        pipeline = CapturePipeline(wm, pointer=pointer)
        pipeline.capture()  # initial image announcement
        pointer.move_to(44, 55)
        frame = pipeline.capture()
        assert frame.pointer is not None
        assert (frame.pointer.left, frame.pointer.top) == (44, 55)
        assert frame.pointer.image is None  # image unchanged

    def test_initial_capture_announces_image(self, wm):
        pointer = PointerState()
        pipeline = CapturePipeline(wm, pointer=pointer)
        frame = pipeline.capture()
        assert frame.pointer is not None
        assert frame.pointer.image is not None


class TestFullFrame:
    def test_full_frame_complete_state(self, wm):
        wm.create_window(Rect(0, 0, 50, 50))
        wm.create_window(Rect(100, 100, 30, 30))
        pointer = PointerState()
        pipeline = CapturePipeline(wm, pointer=pointer)
        pipeline.capture()
        full = pipeline.full_frame()
        assert full.window_info is not None
        assert len(full.updates) == 2
        assert full.damage_area() == 50 * 50 + 30 * 30
        assert full.pointer is not None and full.pointer.image is not None
