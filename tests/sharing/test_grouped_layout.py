"""Tests for the group-aware layout policy (section 4.1 grouping)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window_info import WindowRecord
from repro.sharing.layout import GroupedLayout
from repro.surface.geometry import Rect

SCREEN = Rect(0, 0, 1280, 1024)


def record(wid, group, left, top, w=100, h=80):
    return WindowRecord(wid, group, left, top, w, h)


class TestGroupedLayout:
    def test_intra_group_geometry_preserved(self):
        """Windows of one process keep their relative arrangement."""
        records = [
            record(1, 1, 200, 150),
            record(2, 1, 260, 230),  # 60 right, 80 down of window 1
            record(3, 2, 900, 700),
        ]
        placements = GroupedLayout().place(records, SCREEN)
        dx = placements[2].x - placements[1].x
        dy = placements[2].y - placements[1].y
        assert (dx, dy) == (60, 80)

    def test_groups_do_not_overlap(self):
        records = [
            record(1, 1, 0, 0),
            record(2, 1, 50, 40),
            record(3, 2, 10, 20),  # would overlap group 1 originally
            record(4, 2, 60, 60),
        ]
        placements = GroupedLayout(gutter=16).place(records, SCREEN)
        # Bounding boxes of the two groups are horizontally disjoint.
        g1_right = max(placements[w].x + 100 for w in (1, 2))
        g2_left = min(placements[w].x for w in (3, 4))
        assert g2_left >= g1_right + 16 or g1_right >= g2_left  # ordered either way
        # Stronger: packed left-to-right, so no x-range intersection.
        g1 = [placements[1].x, placements[2].x]
        g2 = [placements[3].x, placements[4].x]
        assert max(g1) + 100 <= min(g2) or max(g2) + 100 <= min(g1)

    def test_ungrouped_windows_are_own_units(self):
        records = [record(1, 0, 500, 500), record(2, 0, 510, 510)]
        placements = GroupedLayout(gutter=10).place(records, SCREEN)
        assert placements[1] != placements[2]

    def test_wraps_to_next_row(self):
        records = [
            record(i, i, 0, 0, w=500, h=100) for i in range(1, 5)
        ]
        placements = GroupedLayout(gutter=20).place(records, SCREEN)
        rows = {placements[i].y for i in range(1, 5)}
        assert len(rows) > 1  # 4 × 500px cannot fit one 1280px row

    def test_empty(self):
        assert GroupedLayout().place([], SCREEN) == {}

    @given(
        st.lists(
            st.builds(
                WindowRecord,
                window_id=st.integers(0, 50),
                group_id=st.integers(0, 3),
                left=st.integers(0, 1000),
                top=st.integers(0, 800),
                width=st.integers(20, 300),
                height=st.integers(20, 200),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30)
    def test_all_windows_on_screen(self, raw_records):
        seen = {}
        for r in raw_records:
            seen[r.window_id] = r
        records = list(seen.values())
        placements = GroupedLayout().place(records, SCREEN)
        for r in records:
            p = placements[r.window_id]
            assert p.x >= 0 and p.y >= 0
            if r.width <= SCREEN.width:
                assert p.x + r.width <= SCREEN.width


class TestShiftInEditor:
    def test_shift_produces_uppercase(self):
        from repro.apps.text_editor import TextEditorApp
        from repro.core import keycodes
        from repro.surface.window import WindowManager

        wm = WindowManager(640, 480)
        editor = TextEditorApp(wm.create_window(Rect(0, 0, 300, 200)))
        editor.on_key_pressed(keycodes.VK_A)
        editor.on_key_pressed(keycodes.VK_SHIFT)
        editor.on_key_pressed(keycodes.VK_B)
        editor.on_key_pressed(keycodes.VK_1)
        editor.on_key_released(keycodes.VK_SHIFT)
        editor.on_key_pressed(keycodes.VK_C)
        assert editor.text() == "aB!c"
