"""Tests for AH-side HIP event validation and regeneration."""

import pytest

from repro.apps.base import AppHost
from repro.apps.text_editor import TextEditorApp
from repro.apps.whiteboard import WhiteboardApp
from repro.core import keycodes
from repro.core.hip import (
    BUTTON_LEFT,
    KeyPressed,
    KeyTyped,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
)
from repro.sharing.events import EventInjector
from repro.surface.cursor import PointerState
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


@pytest.fixture
def setup():
    wm = WindowManager(1280, 1024)
    apps = AppHost(wm)
    window = wm.create_window(Rect(100, 100, 400, 300))
    board = WhiteboardApp(window)
    apps.attach(board)
    injector = EventInjector(wm, apps, pointer=PointerState())
    return wm, apps, window, board, injector


class TestLegitimacyCheck:
    """Section 4.1: 'The AH MUST only accept legitimate HIP events by
    checking whether the requested coordinates are inside the shared
    windows.'"""

    def test_inside_window_accepted(self, setup):
        _wm, _apps, window, _board, injector = setup
        msg = MousePressed(window.window_id, BUTTON_LEFT, 150, 150)
        assert injector.inject("p1", msg)
        assert injector.stats.accepted == 1

    def test_outside_all_windows_rejected(self, setup):
        _wm, _apps, window, board, injector = setup
        msg = MousePressed(window.window_id, BUTTON_LEFT, 10, 10)
        assert not injector.inject("p1", msg)
        assert injector.stats.rejected_out_of_window == 1
        assert board.points_drawn == 0

    def test_spoofed_coordinates_beyond_screen_rejected(self, setup):
        _wm, _apps, window, _board, injector = setup
        msg = MouseMoved(window.window_id, 5000, 5000)
        assert not injector.inject("p1", msg)

    def test_event_lands_in_window_local_coords(self, setup):
        _wm, _apps, window, board, injector = setup
        injector.inject("p1", MousePressed(window.window_id, 1, 110, 120))
        injector.inject("p1", MouseReleased(window.window_id, 1, 110, 120))
        # 110-100=10, 120-100=20: the stroke is near window-local (10,20).
        assert board.window.surface.get_pixel(10, 20) != (255, 255, 255, 255)


class TestRouting:
    def test_topmost_window_receives(self, setup):
        wm, apps, window, board, injector = setup
        # A second window covering part of the first.
        top = wm.create_window(Rect(100, 100, 200, 200))
        top_board = WhiteboardApp(top)
        apps.attach(top_board)
        injector.inject("p1", MousePressed(0, BUTTON_LEFT, 150, 150))
        assert top_board.points_drawn == 1
        assert board.points_drawn == 0

    def test_click_raises_window_and_sets_focus(self, setup):
        wm, apps, window, _board, injector = setup
        other = wm.create_window(Rect(100, 100, 400, 300))
        apps.attach(WhiteboardApp(other))
        # `window` is now beneath `other`; click a spot only window covers.
        wm.raise_window(window.window_id)
        injector.inject("p1", MousePressed(0, BUTTON_LEFT, 450, 350))
        assert injector.focus_window_id == window.window_id
        assert wm.top_window().window_id == window.window_id

    def test_wheel_routed(self, setup):
        _wm, _apps, window, board, injector = setup
        assert injector.inject(
            "p1", MouseWheelMoved(window.window_id, 150, 150, -120)
        )
        assert board.events_handled == 1

    def test_pointer_state_follows_mouse(self, setup):
        _wm, _apps, window, _board, injector = setup
        injector.inject("p1", MouseMoved(window.window_id, 222, 233))
        assert (injector.pointer.x, injector.pointer.y) == (222, 233)


class TestKeyboardFocus:
    def test_key_to_named_window(self, setup):
        wm, apps, _window, _board, injector = setup
        editor_win = wm.create_window(Rect(600, 100, 300, 200))
        editor = TextEditorApp(editor_win)
        apps.attach(editor)
        injector.inject("p1", KeyTyped(editor_win.window_id, "abc"))
        assert editor.text() == "abc"

    def test_key_to_unknown_window_falls_back_to_focus(self, setup):
        wm, apps, window, _board, injector = setup
        editor_win = wm.create_window(Rect(600, 100, 300, 200))
        editor = TextEditorApp(editor_win)
        apps.attach(editor)
        injector.inject("p1", MousePressed(0, BUTTON_LEFT, 650, 150))
        # windowID 999 is not shared: falls back to click focus.
        injector.inject("p1", KeyTyped(999, "x"))
        assert editor.text().endswith("x")

    def test_key_with_no_target_rejected(self, setup):
        _wm, _apps, _window, _board, injector = setup
        assert not injector.inject("p1", KeyPressed(999, keycodes.VK_A))
        assert injector.stats.rejected_out_of_window == 1


class TestFloorGating:
    def test_floor_check_blocks(self, setup):
        wm, apps, window, board, _ = setup
        injector = EventInjector(
            wm, apps, floor_check=lambda pid, kind: pid == "holder"
        )
        denied = MousePressed(window.window_id, BUTTON_LEFT, 150, 150)
        assert not injector.inject("intruder", denied)
        assert injector.stats.rejected_floor == 1
        assert injector.inject("holder", denied)

    def test_kind_specific_gating(self, setup):
        wm, apps, window, _board, _ = setup
        editor_win = wm.create_window(Rect(600, 100, 300, 200))
        editor = TextEditorApp(editor_win)
        apps.attach(editor)
        # Keyboard allowed, mouse blocked (HID Status = KEYBOARD_ALLOWED).
        injector = EventInjector(
            wm, apps, floor_check=lambda pid, kind: kind == "keyboard"
        )
        assert injector.inject("p1", KeyTyped(editor_win.window_id, "ok"))
        assert not injector.inject(
            "p1", MousePressed(window.window_id, 1, 150, 150)
        )


class TestPayloadEntry:
    def test_inject_payload_decodes(self, setup):
        _wm, _apps, window, board, injector = setup
        payload = MousePressed(window.window_id, 1, 150, 150).encode()
        assert injector.inject_payload("p1", payload)
        assert board.points_drawn == 1

    def test_unknown_type_counted(self, setup):
        _wm, _apps, _window, _board, injector = setup
        from repro.core.header import CommonHeader

        payload = CommonHeader(200, 0, 0).encode()
        assert not injector.inject_payload("p1", payload)
        assert injector.stats.rejected_unknown_type == 1

    def test_stats_by_type(self, setup):
        _wm, _apps, window, _board, injector = setup
        injector.inject("p1", MouseMoved(window.window_id, 150, 150))
        injector.inject("p1", MouseMoved(window.window_id, 151, 150))
        assert injector.stats.by_type["MouseMoved"] == 2
