"""The redesigned public surface: factories, __all__, deprecation shims."""

import random
import warnings

import pytest

import repro
import repro.sharing
from repro.apps.text_editor import TextEditorApp
from repro.obs import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.sharing import (
    ApplicationHost,
    Participant,
    SharingConfig,
    SharingService,
    SignallingBinding,
    host,
    join,
)
from repro.sharing.transport import DatagramTransport
from repro.sip.dialog import SipEndpoint
from repro.surface.geometry import Rect


def small_host(**kwargs):
    return host(
        config=SharingConfig(adaptive_codec=False),
        screen_width=320,
        screen_height=240,
        **kwargs,
    )


class TestFactories:
    def test_host_builds_clock_ah_and_service(self):
        service = small_host()
        assert isinstance(service, SharingService)
        assert isinstance(service.clock, SimulatedClock)
        assert service.ah.windows.screen.width == 320

    def test_join_establishes_and_converges(self):
        service = small_host()
        window = service.ah.windows.create_window(Rect(10, 10, 160, 120))
        editor = TextEditorApp(window)
        service.ah.apps.attach(editor)
        viewer = join(service, "alice")
        assert isinstance(viewer, Participant)
        editor.type_text("through the factory api")
        for _ in range(400):
            service.advance(0.02)
            if viewer.converged_with(service.ah.windows):
                break
        assert viewer.converged_with(service.ah.windows)

    def test_join_udp_preference_pins_datagram_media(self):
        service = small_host()
        join(service, "alice", prefer_transport="udp")
        assert not service.ah.sessions["alice"].transport.reliable

    def test_join_failure_raises_with_round_budget(self):
        service = small_host()
        with pytest.raises(RuntimeError, match="did not establish"):
            join(service, "mute", max_rounds=0)  # no rounds to handshake
        # Inviting the same name twice is rejected outright.
        service.invite("alice")
        with pytest.raises(ValueError, match="already exists"):
            service.invite("alice")

    def test_top_level_exports(self):
        assert repro.host is repro.sharing.host
        assert repro.join is repro.sharing.join
        for name in ("host", "join", "SessionServer", "SharingService",
                     "SignallingBinding"):
            assert name in repro.sharing.__all__
        for name in ("host", "join", "quick_session"):
            assert name in repro.__all__

    def test_host_binds_obs_clock(self):
        obs = Instrumentation()
        service = small_host(obs=obs)
        join(service, "alice")
        service.advance(0.02)
        assert obs.registry.total("scheduler.packets_sent") > 0


class TestInviteShim:
    def test_modern_invite_returns_service_owned_binding(self):
        service = small_host()
        binding = service.invite("alice")
        assert isinstance(binding, SignallingBinding)
        assert binding.name == "alice"
        assert service.binding_for("alice") is binding

    def test_legacy_four_arg_invite_warns_and_still_works(self):
        service = small_host()
        to_remote, to_service = [], []
        remote = SipEndpoint(
            "sip:alice@remote",
            send=to_service.append,
            rng=random.Random(3),
        )
        with pytest.warns(DeprecationWarning, match="remote_inbox"):
            service.invite("alice", remote, to_remote, to_service)
        # The caller's own lists are the live queues.
        assert to_remote, "INVITE should be queued in the caller's inbox"
        binding = service.binding_for("alice")
        assert binding.to_remote is to_remote
        assert binding.to_service is to_service

    def test_legacy_invite_requires_both_inboxes(self):
        service = small_host()
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                service.invite("alice", None, [], None)


class TestObsKwargShims:
    def test_application_host_instrumentation_warns(self):
        obs = Instrumentation()
        with pytest.warns(DeprecationWarning, match="pass obs="):
            ah = ApplicationHost(clock=SimulatedClock(), instrumentation=obs)
        assert ah.obs is obs

    def test_participant_instrumentation_warns(self):
        from repro.net.channel import ChannelConfig, duplex_lossy

        clock = SimulatedClock()
        link = duplex_lossy(ChannelConfig(), clock.now)
        obs = Instrumentation()
        with pytest.warns(DeprecationWarning, match="pass obs="):
            Participant(
                "p", DatagramTransport(link.backward, link.forward),
                clock=clock, instrumentation=obs,
            )

    def test_service_instrumentation_warns_and_obs_wins_when_both(self):
        clock = SimulatedClock()
        ah = ApplicationHost(clock=clock)
        legacy, modern = Instrumentation(), Instrumentation()
        with pytest.warns(DeprecationWarning):
            service = SharingService(
                ah, clock, obs=modern, instrumentation=legacy
            )
        assert service.obs is modern

    def test_quick_session_instrumentation_warns(self):
        obs = Instrumentation()
        with pytest.warns(DeprecationWarning, match="quick_session"):
            repro.quick_session(instrumentation=obs)
