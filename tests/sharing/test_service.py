"""Tests for the SIP-managed sharing service."""

import random

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.rtp.clock import SimulatedClock
from repro.sdp import negotiate, parse_sdp
from repro.sharing.ah import ApplicationHost
from repro.sharing.service import SharingService
from repro.sip.dialog import DialogState, SipEndpoint
from repro.surface.geometry import Rect


@pytest.fixture
def setup():
    clock = SimulatedClock()
    ah = ApplicationHost(clock=clock.now)
    window = ah.windows.create_window(Rect(10, 10, 200, 150))
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    service = SharingService(ah, clock)
    return clock, ah, service, window, editor


def make_remote(name: str, to_service: list[str]):
    """A participant-side SIP endpoint that auto-answers INVITEs."""
    endpoint = SipEndpoint(
        f"sip:{name}@host-{name}",
        send=to_service.append,
        rng=random.Random(hash(name) % 1000),
    )
    return endpoint


def establish(service, remote, remote_inbox, service_inbox, name):
    service.invite(name, remote, remote_inbox, service_inbox)
    # Deliver INVITE; remote negotiates and answers.
    while remote_inbox:
        remote.receive(remote_inbox.pop(0))
    assert remote.state is DialogState.RINGING
    agreed = negotiate(parse_sdp(remote.remote_sdp))
    remote.accept(f"v=0\r\ns=answer transport={agreed.transport}\r\n"
                  + remote.remote_sdp)
    service.pump_signalling()
    while remote_inbox:  # ACK back to the remote
        remote.receive(remote_inbox.pop(0))


class TestCallLifecycle:
    def test_invite_establishes_media(self, setup):
        clock, ah, service, window, editor = setup
        remote_inbox: list[str] = []
        service_inbox: list[str] = []
        remote = make_remote("alice", service_inbox)
        establish(service, remote, remote_inbox, service_inbox, "alice")
        assert "alice" in service.active_calls()
        assert "alice" in ah.sessions
        participant = service.participant_for("alice")
        assert participant is not None
        for _ in range(40):
            service.advance(0.02)
        assert participant.converged_with(ah.windows)

    def test_media_follows_negotiated_transport(self, setup):
        clock, ah, service, _window, _editor = setup
        remote_inbox: list[str] = []
        service_inbox: list[str] = []
        remote = make_remote("bob", service_inbox)
        establish(service, remote, remote_inbox, service_inbox, "bob")
        # Default preference is TCP → reliable transport on both ends.
        assert ah.sessions["bob"].transport.reliable

    def test_hang_up_removes_participant(self, setup):
        clock, ah, service, _window, _editor = setup
        remote_inbox: list[str] = []
        service_inbox: list[str] = []
        remote = make_remote("carol", service_inbox)
        establish(service, remote, remote_inbox, service_inbox, "carol")
        assert "carol" in ah.sessions
        service.hang_up("carol")
        while remote_inbox:
            remote.receive(remote_inbox.pop(0))
        assert "carol" not in ah.sessions
        assert service.active_calls() == []
        assert remote.state is DialogState.TERMINATED

    def test_remote_bye_removes_participant(self, setup):
        clock, ah, service, _window, _editor = setup
        remote_inbox: list[str] = []
        service_inbox: list[str] = []
        remote = make_remote("dave", service_inbox)
        establish(service, remote, remote_inbox, service_inbox, "dave")
        remote.bye()
        service.pump_signalling()
        assert "dave" not in ah.sessions

    def test_duplicate_call_name_rejected(self, setup):
        _clock, _ah, service, _w, _e = setup
        inbox: list[str] = []
        remote = make_remote("eve", inbox)
        service.invite("eve", remote, [], inbox)
        with pytest.raises(ValueError):
            service.invite("eve", remote, [], inbox)

    def test_signalling_queues_can_be_deques(self, setup):
        # pump_signalling drains with popleft when the queue offers it
        # (O(1) per message instead of list.pop(0)'s O(n)).
        from collections import deque

        clock, ah, service, _window, _editor = setup
        remote_inbox: list[str] = []
        service_inbox = deque()
        remote = make_remote("grace", service_inbox)
        service.invite("grace", remote, remote_inbox, service_inbox)
        while remote_inbox:
            remote.receive(remote_inbox.pop(0))
        agreed = negotiate(parse_sdp(remote.remote_sdp))
        remote.accept(f"v=0\r\ns=answer transport={agreed.transport}\r\n"
                      + remote.remote_sdp)
        service.pump_signalling()
        assert not service_inbox  # fully drained
        assert "grace" in service.active_calls()
        assert "grace" in ah.sessions

    def test_typing_flows_through_sip_established_session(self, setup):
        clock, ah, service, window, editor = setup
        remote_inbox: list[str] = []
        service_inbox: list[str] = []
        remote = make_remote("fred", service_inbox)
        establish(service, remote, remote_inbox, service_inbox, "fred")
        participant = service.participant_for("fred")
        for _ in range(40):
            service.advance(0.02)
        participant.type_text(window.window_id, "via SIP session")
        for _ in range(40):
            service.advance(0.02)
        assert editor.text() == "via SIP session"
