"""Tests for the update scheduler: backlog coalescing, pacing, NACKs."""

import random

import numpy as np
import pytest

from repro.codecs.base import default_registry
from repro.net.channel import ChannelConfig, duplex_reliable, duplex_lossy
from repro.net.ratecontrol import TokenBucket
from repro.rtp.clock import SimulatedClock
from repro.rtp.packet import RtpPacket
from repro.rtp.session import RtpSender
from repro.sharing.capture import CapturedFrame, UpdateOp
from repro.sharing.config import PT_REMOTING, SharingConfig
from repro.sharing.encoder import FrameEncoder
from repro.sharing.sender import UpdateScheduler
from repro.sharing.transport import DatagramTransport, StreamTransport
from repro.surface.framebuffer import WHITE
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


@pytest.fixture
def clock():
    return SimulatedClock()


def make_scheduler(clock, config=None, bandwidth=0, rate_bps=None,
                   reliable=True, send_buffer=256 * 1024):
    cfg = config or SharingConfig()
    manager = WindowManager(640, 480)
    window = manager.create_window(Rect(0, 0, 200, 200))
    manager.harvest_damage()
    channel_config = ChannelConfig(delay=0.01, bandwidth_bps=bandwidth)
    if reliable:
        link = duplex_reliable(channel_config, clock.now, send_buffer=send_buffer)
        transport = StreamTransport(link.forward, link.backward)
        receiver = StreamTransport(link.backward, link.forward)
    else:
        link = duplex_lossy(channel_config, clock.now)
        transport = DatagramTransport(link.forward, link.backward)
        receiver = DatagramTransport(link.backward, link.forward)
    sender = RtpSender(PT_REMOTING, now=clock.now, rng=random.Random(0))
    encoder = FrameEncoder(sender, default_registry(), cfg, clock.now)
    limiter = TokenBucket(rate_bps, clock.now) if rate_bps else None
    scheduler = UpdateScheduler(transport, encoder, manager, cfg, clock.now, limiter)
    return scheduler, manager, window, receiver


def frame_for(window, rect: Rect) -> CapturedFrame:
    return CapturedFrame(
        updates=[
            UpdateOp(
                window.window_id,
                window.rect.left + rect.left,
                window.rect.top + rect.top,
                window.surface.read_rect(rect),
            )
        ]
    )


class TestImmediateSend:
    def test_clear_path_sends_now(self, clock):
        scheduler, _m, window, receiver = make_scheduler(clock)
        scheduler.submit(frame_for(window, Rect(0, 0, 10, 10)))
        assert scheduler.packets_sent > 0
        assert scheduler.queue_depth == 0
        clock.advance(0.02)
        assert receiver.receive_packets()

    def test_empty_frame_ignored(self, clock):
        scheduler, _m, _w, _r = make_scheduler(clock)
        scheduler.submit(CapturedFrame())
        assert scheduler.packets_sent == 0


class TestCoalescing:
    def test_backlogged_frames_coalesce(self, clock):
        # 80 kb/s: a full-window PNG takes a while to drain.
        scheduler, _m, window, _r = make_scheduler(clock, bandwidth=80_000)
        window.fill(WHITE)
        scheduler.submit(frame_for(window, Rect(0, 0, 200, 200)))
        sent_first = scheduler.packets_sent
        # While the link is busy, submit 10 more frames for one region.
        for i in range(10):
            window.fill((i, i, i, 255), Rect(0, 0, 50, 50))
            scheduler.submit(frame_for(window, Rect(0, 0, 50, 50)))
        assert scheduler.frames_coalesced == 10
        assert scheduler.has_pending
        # Only the original packets went out so far.
        assert scheduler.packets_sent == sent_first
        # Once the link drains, exactly one fresh update goes out.
        clock.advance(5.0)
        scheduler.pump()
        assert not scheduler.has_pending

    def test_coalesced_send_uses_latest_pixels(self, clock):
        scheduler, _m, window, receiver = make_scheduler(clock, bandwidth=100_000)
        window.fill(WHITE)
        scheduler.submit(frame_for(window, Rect(0, 0, 200, 200)))
        # Stale intermediate states while blocked:
        for value in (10, 20, 30):
            window.fill((value, 0, 0, 255), Rect(0, 0, 8, 8))
            scheduler.submit(frame_for(window, Rect(0, 0, 8, 8)))
        clock.advance(10.0)
        scheduler.pump()
        clock.advance(1.0)
        packets = [RtpPacket.decode(p) for p in receiver.receive_packets()]
        # Reassemble every region update and decode the last 8x8 one.
        from repro.core.fragmentation import UpdateReassembler

        registry = default_registry()
        reassembler = UpdateReassembler()
        small_updates = []
        for packet in packets:
            result = reassembler.push(
                packet.payload, packet.marker, packet.timestamp
            )
            if result is not None:
                pixels = registry.by_payload_type(result.content_pt).decode(
                    result.data
                )
                if pixels.shape[:2] == (8, 8):
                    small_updates.append(pixels)
        # Exactly one coalesced update for the 8x8 region, newest content.
        assert len(small_updates) == 1
        assert (small_updates[0][0, 0] == (30, 0, 0, 255)).all()

    def test_coalescing_disabled_queues_everything(self, clock):
        cfg = SharingConfig(backlog_coalescing=False)
        scheduler, _m, window, _r = make_scheduler(
            clock, config=cfg, bandwidth=80_000, send_buffer=4096
        )
        rng = np.random.default_rng(0)
        for _ in range(5):
            window.draw_pixels(
                0, 0, rng.integers(0, 256, (100, 100, 4)).astype(np.uint8)
            )
            scheduler.submit(frame_for(window, Rect(0, 0, 100, 100)))
        assert scheduler.frames_coalesced == 0
        assert scheduler.queue_depth > 0  # stale frames stay queued

    def test_window_info_survives_coalescing(self, clock):
        from repro.sharing.capture import window_manager_info

        scheduler, manager, window, receiver = make_scheduler(
            clock, bandwidth=50_000
        )
        window.fill(WHITE)
        scheduler.submit(frame_for(window, Rect(0, 0, 200, 200)))
        frame = CapturedFrame(window_info=window_manager_info(manager))
        scheduler.submit(frame)  # coalesced while blocked
        clock.advance(20.0)
        scheduler.pump()
        clock.advance(1.0)
        packets = [RtpPacket.decode(p) for p in receiver.receive_packets()]
        types = {p.payload[0] for p in packets}
        assert 1 in types  # WindowManagerInfo made it out


class TestRatePacing:
    def test_rate_limited_udp(self, clock):
        scheduler, _m, window, _r = make_scheduler(
            clock, reliable=False, rate_bps=200_000
        )
        window.fill(WHITE)
        # Submit a burst far exceeding one second of budget.
        for i in range(30):
            window.fill((i, 0, 0, 255), Rect(0, 0, 100, 100))
            scheduler.submit(frame_for(window, Rect(0, 0, 100, 100)))
            scheduler.pump()
        bytes_first_burst = scheduler.bytes_sent
        assert bytes_first_burst <= 200_000 / 8 + 10_000  # burst cap
        # After time passes, pending data drains at the configured rate.
        clock.advance(1.0)
        scheduler.pump()
        assert scheduler.bytes_sent > bytes_first_burst


class TestFullRefresh:
    def test_full_refresh_supersedes_pending(self, clock):
        scheduler, _m, window, _r = make_scheduler(clock, bandwidth=50_000)
        window.fill(WHITE)
        scheduler.submit(frame_for(window, Rect(0, 0, 200, 200)))
        scheduler.submit(frame_for(window, Rect(0, 0, 10, 10)))  # pending
        scheduler.submit_full_refresh()
        assert not scheduler.has_pending  # pending absorbed by refresh

    def test_full_refresh_contains_wmi(self, clock):
        scheduler, _m, _w, receiver = make_scheduler(clock)
        scheduler.submit_full_refresh()
        clock.advance(0.1)
        packets = [RtpPacket.decode(p) for p in receiver.receive_packets()]
        assert packets[0].payload[0] == 1  # WMI first


class TestRetransmission:
    def test_retransmit_from_cache(self, clock):
        scheduler, _m, window, receiver = make_scheduler(clock, reliable=False)
        scheduler.submit(frame_for(window, Rect(0, 0, 20, 20)))
        clock.advance(0.1)
        originals = receiver.receive_packets()
        assert originals
        seqs = [RtpPacket.decode(p).sequence_number for p in originals]
        count = scheduler.retransmit(seqs)
        assert count == len(seqs)
        clock.advance(0.1)
        replays = receiver.receive_packets()
        assert sorted(replays) == sorted(originals)

    def test_retransmit_unknown_seq_ignored(self, clock):
        scheduler, _m, _w, _r = make_scheduler(clock, reliable=False)
        assert scheduler.retransmit([12345]) == 0

    def test_cache_disabled_when_no_retransmissions(self, clock):
        cfg = SharingConfig(retransmissions=False)
        scheduler, _m, window, receiver = make_scheduler(clock, config=cfg)
        scheduler.submit(frame_for(window, Rect(0, 0, 10, 10)))
        clock.advance(0.1)
        seqs = [
            RtpPacket.decode(p).sequence_number
            for p in receiver.receive_packets()
        ]
        assert scheduler.retransmit(seqs) == 0


class TestStaleness:
    def test_staleness_recorded(self, clock):
        scheduler, _m, window, _r = make_scheduler(clock)
        scheduler.submit(frame_for(window, Rect(0, 0, 10, 10)))
        assert scheduler.updates_sent_stale_after
        assert all(s >= 0 for s in scheduler.updates_sent_stale_after)
