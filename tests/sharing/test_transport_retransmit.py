"""Tests for transport adaptors, RTP/RTCP demux, and the NACK cache."""

import pytest

from repro.net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from repro.net.multicast import MulticastGroup
from repro.rtp.clock import SimulatedClock
from repro.rtp.feedback import PictureLossIndication
from repro.rtp.packet import RtpPacket
from repro.sharing.retransmit import RetransmitCache
from repro.sharing.transport import (
    DatagramTransport,
    MulticastReceiverTransport,
    MulticastSenderTransport,
    StreamTransport,
    is_rtcp,
)


@pytest.fixture
def clock():
    return SimulatedClock()


class TestDemux:
    def test_rtp_not_rtcp(self):
        packet = RtpPacket(99, 0, 0, 1, b"x").encode()
        assert not is_rtcp(packet)

    def test_hip_pt_with_marker_not_rtcp(self):
        # PT 100 + marker bit → second byte 228... wait, 0x80|100 = 228.
        packet = RtpPacket(100, 0, 0, 1, b"x", marker=True).encode()
        assert not is_rtcp(packet) or packet[1] < 192  # must stay RTP
        # PT range 96-127 with marker gives 224-255 — above the RTCP
        # window only when >223; PT 100 marker = 228 which is >223.
        assert packet[1] == 228

    def test_rtcp_detected(self):
        assert is_rtcp(PictureLossIndication(1, 2).encode())

    def test_short_junk(self):
        assert not is_rtcp(b"")
        assert not is_rtcp(b"\x80")


class TestDatagramTransport:
    def test_bidirectional(self, clock):
        link = duplex_lossy(ChannelConfig(delay=0.01), clock.now)
        ah = DatagramTransport(link.forward, link.backward)
        participant = DatagramTransport(link.backward, link.forward)
        ah.send_packet(b"down")
        participant.send_packet(b"up")
        clock.advance(0.02)
        assert participant.receive_packets() == [b"down"]
        assert ah.receive_packets() == [b"up"]

    def test_not_reliable(self, clock):
        link = duplex_lossy(ChannelConfig(), clock.now)
        assert not DatagramTransport(link.forward, link.backward).reliable


class TestStreamTransport:
    def test_framing_roundtrip(self, clock):
        link = duplex_reliable(ChannelConfig(delay=0.01), clock.now)
        ah = StreamTransport(link.forward, link.backward)
        participant = StreamTransport(link.backward, link.forward)
        for i in range(5):
            ah.send_packet(bytes([i]) * (i + 1))
        clock.advance(0.02)
        assert participant.receive_packets() == [
            bytes([i]) * (i + 1) for i in range(5)
        ]

    def test_backlog_visible(self, clock):
        link = duplex_reliable(
            ChannelConfig(delay=0, bandwidth_bps=8_000), clock.now
        )
        ah = StreamTransport(link.forward, link.backward)
        ah.send_packet(b"x" * 2000)
        assert ah.backlog_bytes() > 0
        clock.advance(10)
        assert ah.backlog_bytes() == 0

    def test_reliable_flag(self, clock):
        link = duplex_reliable(ChannelConfig(), clock.now)
        assert StreamTransport(link.forward, link.backward).reliable


class TestMulticastTransports:
    def test_sender_fans_out(self, clock):
        group = MulticastGroup(ChannelConfig(delay=0.01), clock.now)
        a_chan = group.subscribe("a")
        b_chan = group.subscribe("b")
        feedback = duplex_lossy(ChannelConfig(delay=0.01), clock.now)
        sender = MulticastSenderTransport(group)
        recv_a = MulticastReceiverTransport(a_chan, feedback.backward)
        recv_b = MulticastReceiverTransport(b_chan, feedback.backward)
        sender.send_packet(b"frame")
        clock.advance(0.02)
        assert recv_a.receive_packets() == [b"frame"]
        assert recv_b.receive_packets() == [b"frame"]
        assert sender.receive_packets() == []  # send-only

    def test_receiver_feedback_path(self, clock):
        group = MulticastGroup(ChannelConfig(delay=0.01), clock.now)
        chan = group.subscribe("a")
        feedback = duplex_lossy(ChannelConfig(delay=0.01), clock.now)
        receiver = MulticastReceiverTransport(chan, feedback.backward)
        receiver.send_packet(b"nack")
        clock.advance(0.02)
        assert feedback.backward.receive_ready() == [b"nack"]


class TestRetransmitCache:
    def test_store_lookup(self):
        cache = RetransmitCache(capacity=10)
        cache.store(5, b"five")
        assert cache.lookup(5) == b"five"
        assert cache.hits == 1

    def test_miss(self):
        cache = RetransmitCache()
        assert cache.lookup(1) is None
        assert cache.misses == 1

    def test_eviction_oldest_first(self):
        cache = RetransmitCache(capacity=3)
        for seq in range(5):
            cache.store(seq, bytes([seq]))
        assert cache.lookup(0) is None
        assert cache.lookup(1) is None
        assert cache.lookup(4) == bytes([4])
        assert len(cache) == 3

    def test_lookup_many_preserves_order(self):
        cache = RetransmitCache()
        for seq in (1, 2, 3):
            cache.store(seq, bytes([seq]))
        assert cache.lookup_many([3, 9, 1]) == [bytes([3]), bytes([1])]

    def test_zero_capacity_stores_nothing(self):
        cache = RetransmitCache(capacity=0)
        cache.store(1, b"x")
        assert cache.lookup(1) is None

    def test_seq_wraps_mod_2_16(self):
        cache = RetransmitCache()
        cache.store(0x1_0005, b"wrapped")
        assert cache.lookup(5) == b"wrapped"

    def test_restore_moves_to_fresh(self):
        cache = RetransmitCache(capacity=2)
        cache.store(1, b"a")
        cache.store(2, b"b")
        cache.store(1, b"a2")  # refresh 1
        cache.store(3, b"c")  # evicts 2, not 1
        assert cache.lookup(1) == b"a2"
        assert cache.lookup(2) is None


class TestRetransmitCacheWraparound:
    """Regression tests for the stale-replay wraparound bug.

    The pre-fix cache was keyed by ``seq & 0xFFFF``: with capacity above
    65536 (config allows any size), a first-cycle packet stored under a
    residue was replayed for a current-cycle NACK naming the same
    residue — 65536 sequence numbers of silent pixel corruption.
    """

    def test_stale_cycle_entry_not_replayed(self):
        cache = RetransmitCache(capacity=70_000)
        # First cycle: a full 65536-packet sweep.
        for seq in range(0x10000):
            cache.store(seq, b"old-%d" % seq)
        # Second cycle: residues 0..10, but residue 5 was never sent
        # (or its store was skipped) — the NACK for it must MISS, not
        # resurrect b"old-5" from a cycle ago.
        for seq in range(0x10000, 0x10005):
            cache.store(seq, b"new-%d" % (seq & 0xFFFF))
        for seq in range(0x10006, 0x1000B):
            cache.store(seq, b"new-%d" % (seq & 0xFFFF))
        assert cache.lookup(5) is None
        assert cache.stale_rejected + cache.misses >= 1
        # Residues actually re-sent resolve to the fresh bytes.
        assert cache.lookup(4) == b"new-4"
        assert cache.lookup(7) == b"new-7"

    def test_same_residue_new_cycle_replaces(self):
        cache = RetransmitCache(capacity=70_000)
        cache.store(5, b"first-cycle")
        for seq in range(6, 0x10000):
            cache.store(seq, b".")
        cache.store(0x10005, b"second-cycle")
        assert cache.lookup(5) == b"second-cycle"
        # The first-cycle packet is gone entirely, not shadowed.
        assert cache.lookup(0x10005 - 0x10000) == b"second-cycle"

    def test_wire_seq_store_extends_across_wrap(self):
        """Stores arrive as bare 16-bit wire values; the cache must
        extend them so wraparound does not reset its ordering."""
        cache = RetransmitCache(capacity=8)
        for seq in (0xFFFE, 0xFFFF, 0x0000, 0x0001):
            cache.store(seq, b"s%d" % seq)
        assert cache.lookup(0xFFFE) == b"s%d" % 0xFFFE
        assert cache.lookup(0x0001) == b"s%d" % 0x0001
        assert len(cache) == 4

    def test_stale_lookup_counted(self):
        cache = RetransmitCache(capacity=70_000)
        for seq in range(0x10000 + 10):
            cache.store(seq, b"x")
        # Residue 11 still holds only the first-cycle entry; a NACK for
        # it is half the sequence space behind the newest packet.
        assert cache.lookup(11) is None
        assert cache.stale_rejected == 1
        assert cache.misses == 1
