"""Pool wiring through the sharing tier: config → host → encoder → span."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.codecs.base import default_registry
from repro.codecs.parallel import EncodePool
from repro.obs import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.rtp.session import RtpSender
from repro.sharing.ah import ApplicationHost
from repro.sharing.capture import UpdateOp
from repro.sharing.config import PT_REMOTING, SharingConfig
from repro.sharing.encoder import FrameEncoder
from repro.sharing.server import SessionServer
from repro.sharing.transport import PacketTransport


class NullTransport(PacketTransport):
    reliable = False

    def send_packet(self, packet: bytes) -> bool:
        return True

    def receive_packets(self) -> list[bytes]:
        return []


def _photo(seed: int, h: int = 160, w: int = 64) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 256, size=(h, w, 4), dtype=np.uint8
    )


def _encoder(pool, obs=None, config=None):
    clock = SimulatedClock()
    sender = RtpSender(PT_REMOTING, now=clock.now)
    return FrameEncoder(
        sender, default_registry(), config or SharingConfig(), clock.now,
        instrumentation=obs, pool=pool,
    )


class TestFrameEncoderPool:
    def test_large_update_routes_through_pool(self):
        obs = Instrumentation()
        with EncodePool(2, obs=obs) as pool:
            encoder = _encoder(pool, obs=obs)
            packets = encoder.encode_update(UpdateOp(1, 0, 0, _photo(1)), 0.0)
            assert packets
            assert obs.registry.total("encode.bands") > 0
            sid = packets[0].update_id
            assert "parallel_encode" in obs.spans.get_open(sid).stages

    def test_small_update_stays_in_process(self):
        obs = Instrumentation()
        with EncodePool(1, obs=obs) as pool:
            encoder = _encoder(pool, obs=obs)
            packets = encoder.encode_update(
                UpdateOp(1, 0, 0, _photo(2, h=16, w=16)), 0.0
            )
            assert packets
            assert obs.registry.total("encode.bands") == 0
            sid = packets[0].update_id
            assert "parallel_encode" not in obs.spans.get_open(sid).stages

    def test_parallel_output_decodes_identically(self):
        pixels = _photo(3)
        with EncodePool(2) as pool:
            with_pool = _encoder(pool)
            without = _encoder(None)
            a = with_pool._encode_pixels(pixels)
            b = without._encode_pixels(pixels)
        assert a[0] == b[0]  # same codec choice
        from repro.codecs.base import default_registry as reg

        codec = reg().by_payload_type(a[0])
        assert np.array_equal(codec.decode(a[1]), codec.decode(b[1]))


class TestApplicationHostPool:
    def test_workers_zero_means_no_pool(self):
        ah = ApplicationHost(320, 240, clock=SimulatedClock().now)
        assert ah.encode_pool is None
        ah.close()  # no-op, must not raise

    def test_host_owns_and_shares_one_pool(self):
        config = SharingConfig(encode_workers=1)
        ah = ApplicationHost(
            320, 240, config=config, clock=SimulatedClock().now
        )
        try:
            assert ah.encode_pool is not None
            s1 = ah.add_participant("p1", NullTransport())
            s2 = ah.add_participant("p2", NullTransport())
            assert s1.scheduler.encoder.pool is ah.encode_pool
            assert s2.scheduler.encoder.pool is ah.encode_pool
        finally:
            ah.close()
        assert ah.encode_pool.closed

    def test_invalid_worker_config_rejected(self):
        with pytest.raises(ValueError):
            SharingConfig(encode_workers=-2)
        with pytest.raises(ValueError):
            SharingConfig(encode_bands=-1)


class TestHostedSessionPool:
    def test_session_close_tears_down_pool(self):
        async def scenario():
            async with SessionServer() as server:
                code = server.host(
                    screen_width=320, screen_height=240,
                    config=SharingConfig(
                        adaptive_codec=False, encode_workers=1
                    ),
                )
                session = server.session(code)
                pool = session.ah.encode_pool
                assert pool is not None and not pool.closed
                # The pool watch loop rides the session's supervision.
                assert any(
                    "encode-pool" in (t.get_name() or "")
                    for t in session._tasks
                )
                session.close(reason="test")
                assert pool.closed

        asyncio.run(scenario())
