"""Tests for frame → RTP packet encoding."""

import random

import numpy as np
import pytest

from repro.apps.photo import synthetic_photo
from repro.codecs.base import default_registry
from repro.core.fragmentation import UpdateReassembler
from repro.core.registry import (
    MSG_MOUSE_POINTER_INFO,
    MSG_MOVE_RECTANGLE,
    MSG_REGION_UPDATE,
    MSG_WINDOW_MANAGER_INFO,
)
from repro.core.window_info import WindowManagerInfo, WindowRecord
from repro.rtp.session import RtpSender
from repro.sharing.capture import CapturedFrame, MoveOp, PointerOp, UpdateOp
from repro.sharing.config import PT_REMOTING, SharingConfig
from repro.sharing.encoder import FrameEncoder


@pytest.fixture
def encoder():
    sender = RtpSender(PT_REMOTING, rng=random.Random(0))
    return FrameEncoder(
        sender, default_registry(), SharingConfig(max_rtp_payload=400), lambda: 1.5
    )


def white_pixels(h, w):
    img = np.full((h, w, 4), 255, dtype=np.uint8)
    return img


class TestEncodeOps:
    def test_window_info_single_packet(self, encoder):
        info = WindowManagerInfo((WindowRecord(1, 0, 0, 0, 10, 10),))
        packets = encoder.encode_window_info(info, 0.0)
        assert len(packets) == 1
        assert packets[0].packet.payload[0] == MSG_WINDOW_MANAGER_INFO

    def test_move_single_packet(self, encoder):
        move = MoveOp(1, 0, 0, 10, 10, 5, 5)
        packets = encoder.encode_move(move, 0.0)
        assert len(packets) == 1
        assert packets[0].packet.payload[0] == MSG_MOVE_RECTANGLE
        # Table 2: single-packet messages carry marker=1 (Not
        # Fragmented); marker=0 would read as Start Fragment.
        assert packets[0].packet.marker

    def test_small_update_one_packet_marker_set(self, encoder):
        update = UpdateOp(1, 5, 6, white_pixels(8, 8))
        packets = encoder.encode_update(update, 0.0)
        assert len(packets) == 1
        assert packets[0].packet.marker

    def test_large_update_fragments_share_timestamp(self, encoder):
        update = UpdateOp(1, 0, 0, synthetic_photo(80, 80, seed=1))
        packets = encoder.encode_update(update, 0.0)
        assert len(packets) > 1
        assert len({p.packet.timestamp for p in packets}) == 1
        assert packets[-1].packet.marker
        assert not packets[0].packet.marker

    def test_update_decodes_back_to_pixels(self, encoder):
        pixels = white_pixels(16, 16)
        packets = encoder.encode_update(UpdateOp(3, 7, 8, pixels), 0.0)
        reassembler = UpdateReassembler(MSG_REGION_UPDATE)
        result = None
        for stamped in packets:
            result = reassembler.push(
                stamped.packet.payload,
                stamped.packet.marker,
                stamped.packet.timestamp,
            )
        assert result is not None
        registry = default_registry()
        decoded = registry.by_payload_type(result.content_pt).decode(result.data)
        assert np.array_equal(decoded, pixels)
        assert (result.left, result.top) == (7, 8)

    def test_codec_selection_lossy_for_photo(self, encoder):
        update = UpdateOp(1, 0, 0, synthetic_photo(96, 96, seed=2))
        packets = encoder.encode_update(update, 0.0)
        _, pt = divmod(packets[0].packet.payload[1], 128)
        lossy_pt = default_registry().by_name("lossy-dct").payload_type
        assert pt == lossy_pt

    def test_codec_selection_lossless_for_ui(self, encoder):
        update = UpdateOp(1, 0, 0, white_pixels(64, 64))
        packets = encoder.encode_update(update, 0.0)
        pt = packets[0].packet.payload[1] & 0x7F
        assert pt == default_registry().by_name("png").payload_type

    def test_pointer_position_only(self, encoder):
        packets = encoder.encode_pointer(PointerOp(4, 5, None), 0.0)
        assert len(packets) == 1
        payload = packets[0].packet.payload
        assert payload[0] == MSG_MOUSE_POINTER_INFO
        assert len(payload) == 12  # header + left/top, no image

    def test_pointer_with_image(self, encoder):
        image = white_pixels(16, 12)
        packets = encoder.encode_pointer(PointerOp(4, 5, image), 0.0)
        reassembler = UpdateReassembler(MSG_MOUSE_POINTER_INFO)
        result = None
        for stamped in packets:
            result = reassembler.push(
                stamped.packet.payload,
                stamped.packet.marker,
                stamped.packet.timestamp,
            )
        assert result is not None
        decoded = default_registry().by_payload_type(result.content_pt).decode(
            result.data
        )
        assert np.array_equal(decoded, image)


class TestEncodeFrame:
    def test_protocol_order(self, encoder):
        frame = CapturedFrame(
            window_info=WindowManagerInfo((WindowRecord(1, 0, 0, 0, 8, 8),)),
            moves=[MoveOp(1, 0, 0, 4, 4, 2, 2)],
            updates=[UpdateOp(1, 0, 0, white_pixels(4, 4))],
            pointer=PointerOp(1, 2, None),
        )
        packets = encoder.encode_frame(frame)
        types = [p.packet.payload[0] for p in packets]
        assert types[0] == MSG_WINDOW_MANAGER_INFO
        assert types[1] == MSG_MOVE_RECTANGLE
        assert MSG_REGION_UPDATE in types
        assert types[-1] == MSG_MOUSE_POINTER_INFO

    def test_sequence_numbers_contiguous(self, encoder):
        frame = CapturedFrame(updates=[UpdateOp(1, 0, 0, white_pixels(4, 4))] * 3)
        packets = encoder.encode_frame(frame)
        seqs = [p.packet.sequence_number for p in packets]
        for a, b in zip(seqs, seqs[1:]):
            assert (a + 1) & 0xFFFF == b

    def test_capture_time_stamped(self, encoder):
        frame = CapturedFrame(updates=[UpdateOp(1, 0, 0, white_pixels(4, 4))])
        packets = encoder.encode_frame(frame)
        assert packets[0].capture_time == 1.5

    def test_stats_accumulate(self, encoder):
        frame = CapturedFrame(
            window_info=WindowManagerInfo(()),
            updates=[UpdateOp(1, 0, 0, white_pixels(4, 4))],
        )
        encoder.encode_frame(frame)
        assert encoder.stats.window_info.packets == 1
        assert encoder.stats.region_update.packets >= 1
        assert encoder.stats.total_wire_bytes() > 0


class TestTable2MarkerBits:
    """Single-packet messages must carry marker=1 (Table 2).

    marker=1 + FirstPacket=1 decodes as Not Fragmented; emitting
    marker=0 on a single-packet message reads as Start Fragment and
    strands the receiver's reassembler waiting for a tail that never
    comes.
    """

    def test_window_info_marker_set(self, encoder):
        info = WindowManagerInfo((WindowRecord(1, 0, 0, 0, 10, 10),))
        (stamped,) = encoder.encode_window_info(info, 0.0)
        assert stamped.packet.marker

    def test_move_marker_set(self, encoder):
        (stamped,) = encoder.encode_move(MoveOp(1, 0, 0, 10, 10, 5, 5), 0.0)
        assert stamped.packet.marker

    def test_single_packet_update_is_not_fragmented(self, encoder):
        from repro.core.fragmentation import FragmentType
        from repro.core.header import unpack_update_parameter

        (stamped,) = encoder.encode_update(
            UpdateOp(1, 0, 0, white_pixels(8, 8)), 0.0
        )
        first, _pt = unpack_update_parameter(stamped.packet.payload[1])
        assert (
            FragmentType.from_bits(stamped.packet.marker, first)
            is FragmentType.NOT_FRAGMENTED
        )

    def test_single_packet_pointer_is_not_fragmented(self, encoder):
        from repro.core.fragmentation import FragmentType
        from repro.core.header import unpack_update_parameter

        (stamped,) = encoder.encode_pointer(PointerOp(3, 4, None), 0.0)
        first, _pt = unpack_update_parameter(stamped.packet.payload[1])
        assert (
            FragmentType.from_bits(stamped.packet.marker, first)
            is FragmentType.NOT_FRAGMENTED
        )

    def test_fragmented_update_start_and_end_bits(self, encoder):
        from repro.core.fragmentation import FragmentType
        from repro.core.header import unpack_update_parameter

        packets = encoder.encode_update(
            UpdateOp(1, 0, 0, synthetic_photo(80, 80, seed=1)), 0.0
        )
        assert len(packets) > 2
        kinds = []
        for stamped in packets:
            first, _pt = unpack_update_parameter(stamped.packet.payload[1])
            kinds.append(FragmentType.from_bits(stamped.packet.marker, first))
        assert kinds[0] is FragmentType.START
        assert kinds[-1] is FragmentType.END
        assert all(k is FragmentType.CONTINUATION for k in kinds[1:-1])

    def test_reassembler_accepts_every_single_packet_shape(self, encoder):
        """End-to-end: each single-packet message type round-trips
        through the Table 2 decode path without stranding a partial."""
        reassembler = UpdateReassembler(MSG_REGION_UPDATE)
        (stamped,) = encoder.encode_update(
            UpdateOp(1, 0, 0, white_pixels(8, 8)), 0.0
        )
        done = reassembler.push(
            stamped.packet.payload,
            stamped.packet.marker,
            stamped.packet.timestamp,
            sequence_number=stamped.packet.sequence_number,
        )
        assert done is not None
        assert done.fragment_count == 1
