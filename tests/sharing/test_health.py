"""AH-side liveness: packet arrivals → last-seen state → eviction."""

import pytest

from repro.health import LivenessConfig, PeerState
from repro.net.channel import ChannelConfig
from repro.obs import Instrumentation
from repro.relay.tree import duplex_transport_pair
from repro.rtp.feedback import PictureLossIndication
from repro.sharing.ah import ApplicationHost

LIVE = LivenessConfig(suspect_after=1.0, dead_after=3.0)


@pytest.fixture
def ah(clock):
    return ApplicationHost(clock=clock, liveness=LIVE)


def attach(ah, clock, name):
    ah_side, far_side = duplex_transport_pair(
        ChannelConfig(delay=0.0), clock.now
    )
    ah.add_participant(name, ah_side)
    return far_side


def chatter() -> bytes:
    return PictureLossIndication(0x0BAD_F00D, 0).encode()


class TestTracking:
    def test_no_config_means_no_tracker(self, clock):
        ah = ApplicationHost(clock=clock)
        assert ah.liveness is None
        assert ah.poll_liveness() == []

    def test_any_arriving_packet_counts_as_alive(self, clock, ah):
        far = attach(ah, clock, "alice")
        clock.advance(2.0)
        far.send_packet(chatter())
        ah.process_incoming()
        ah.poll_liveness()
        assert ah.liveness.state_of("alice") is PeerState.ALIVE

    def test_normal_leave_stops_tracking(self, clock, ah):
        attach(ah, clock, "alice")
        ah.remove_participant("alice")
        clock.advance(60.0)
        assert ah.poll_liveness() == []
        assert ah.participants_evicted == 0


class TestEviction:
    def test_dead_silence_evicts_the_participant(self, clock, ah):
        attach(ah, clock, "alice")
        clock.advance(LIVE.dead_after)
        evicted = ah.poll_liveness()
        assert evicted == ["alice"]
        assert "alice" not in ah.sessions
        assert ah.participants_evicted == 1
        # Edge-triggered: the eviction is reported exactly once.
        clock.advance(60.0)
        assert ah.poll_liveness() == []

    def test_chatty_peer_outlives_a_quiet_one(self, clock, ah):
        quiet = attach(ah, clock, "quiet")
        chatty = attach(ah, clock, "chatty")
        for _ in range(3):
            clock.advance(LIVE.dead_after / 2)
            chatty.send_packet(chatter())
            ah.process_incoming()
            ah.poll_liveness()
        assert "chatty" in ah.sessions
        assert "quiet" not in ah.sessions

    def test_eviction_metric_and_snapshot(self, clock):
        obs = Instrumentation(clock=clock.now)
        ah = ApplicationHost(clock=clock, liveness=LIVE, obs=obs)
        attach(ah, clock, "alice")
        clock.advance(LIVE.dead_after)
        ah.poll_liveness()
        assert obs.registry.get(
            "health.participants_evicted"
        ).value == 1
        assert ah.liveness.snapshot()["deaths"] == 1
