"""Tests for session configuration."""

import pytest

from repro.sharing.config import PT_HIP, PT_REMOTING, PointerMode, SharingConfig


class TestPayloadTypes:
    def test_match_sdp_example(self):
        """Section 10.3 uses PT 99 for remoting and 100 for hip."""
        assert PT_REMOTING == 99
        assert PT_HIP == 100

    def test_dynamic_range(self):
        assert 96 <= PT_REMOTING <= 127
        assert 96 <= PT_HIP <= 127


class TestSharingConfig:
    def test_defaults(self):
        config = SharingConfig()
        assert config.retransmissions
        assert config.scroll_detection
        assert config.backlog_coalescing
        assert config.pointer_mode is PointerMode.EXPLICIT
        assert config.clock_rate == 90_000

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingConfig(max_rtp_payload=10)
        with pytest.raises(ValueError):
            SharingConfig(retransmit_cache_packets=-1)
        with pytest.raises(ValueError):
            SharingConfig(max_update_rects=0)
        with pytest.raises(ValueError):
            SharingConfig(clock_rate=0)

    def test_frozen(self):
        config = SharingConfig()
        with pytest.raises(AttributeError):
            config.max_rtp_payload = 500  # type: ignore[misc]

    def test_pointer_modes(self):
        assert PointerMode.IN_BAND.value == "in-band"
        assert PointerMode.EXPLICIT.value == "explicit"
