"""Tests for the NACK retry state machine (RecoveryManager)."""

import pytest

from repro.obs import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.sharing.recovery import RecoveryManager


@pytest.fixture
def clock():
    return SimulatedClock()


def manager(clock, **kwargs):
    kwargs.setdefault("initial_interval", 0.2)
    kwargs.setdefault("backoff", 2.0)
    kwargs.setdefault("max_attempts", 3)
    return RecoveryManager(now=clock.now, **kwargs)


class TestFirstNack:
    def test_new_gap_nacked_immediately(self, clock):
        m = manager(clock)
        actions = m.poll([10, 11])
        assert sorted(actions.nack_now) == [10, 11]
        assert m.nacks_sent == 2
        assert m.pending == 2

    def test_no_renack_before_retry_interval(self, clock):
        m = manager(clock)
        m.poll([10])
        clock.advance(0.1)  # < initial_interval
        actions = m.poll([10])
        assert actions.nack_now == []
        assert m.nacks_sent == 1

    def test_empty_missing_no_actions(self, clock):
        m = manager(clock)
        actions = m.poll([])
        assert actions.nack_now == [] and actions.gave_up == []


class TestRetryBackoff:
    def test_retry_after_interval(self, clock):
        m = manager(clock)
        m.poll([10])
        clock.advance(0.25)
        actions = m.poll([10])
        assert actions.nack_now == [10]
        assert m.retries == 1

    def test_exponential_backoff_schedule(self, clock):
        """Retries land at +0.2, then +0.4, never earlier."""
        m = manager(clock, max_attempts=5)
        m.poll([10])  # attempt 1 at t=0
        clock.advance(0.2)
        assert m.poll([10]).nack_now == [10]  # attempt 2 at t=0.2
        clock.advance(0.2)  # backoff doubled: next due at 0.2 + 0.4
        assert m.poll([10]).nack_now == []
        clock.advance(0.25)
        assert m.poll([10]).nack_now == [10]  # attempt 3
        assert m.retries == 2

    def test_attempts_tracked_per_seq(self, clock):
        m = manager(clock)
        m.poll([10])
        clock.advance(0.3)
        m.poll([10, 20])
        assert m.pending_attempts(10) == 2
        assert m.pending_attempts(20) == 1
        assert m.pending_attempts(30) == 0


class TestGiveUp:
    def exhaust(self, clock, m, seq=10):
        m.poll([seq])
        for _ in range(m.max_attempts - 1):
            clock.advance(10)
            m.poll([seq])

    def test_gives_up_after_capped_attempts(self, clock):
        m = manager(clock, max_attempts=3)
        self.exhaust(clock, m)
        assert m.nacks_sent == 3
        clock.advance(10)
        actions = m.poll([10])
        assert actions.gave_up == [10]
        assert actions.refresh_needed
        assert m.gave_up == 1
        assert m.pending == 0

    def test_no_nacks_after_give_up(self, clock):
        m = manager(clock, max_attempts=2)
        self.exhaust(clock, m)
        clock.advance(10)
        m.poll([10])
        before = m.nacks_sent
        clock.advance(10)
        # The caller acknowledges the gap after give-up, but even if the
        # same seq is reported again it re-enters as a *new* loss.
        actions = m.poll([10])
        assert m.nacks_sent == before + 1  # fresh entry, not a retry
        assert actions.nack_now == [10]


class TestRecovery:
    def test_recovered_via_poll(self, clock):
        m = manager(clock)
        m.poll([10])
        clock.advance(0.05)
        m.poll([])  # gap disappeared from the missing set
        assert m.recovered == 1
        assert m.pending == 0

    def test_recovered_via_arrival(self, clock):
        m = manager(clock)
        m.poll([10])
        clock.advance(0.05)
        m.note_arrival(10)
        assert m.recovered == 1
        assert m.pending == 0

    def test_latency_histogram_records(self, clock):
        obs = Instrumentation(clock=clock.now)
        m = RecoveryManager(now=clock.now, instrumentation=obs)
        m.poll([10])
        clock.advance(0.125)
        m.note_arrival(10)
        summary = obs.registry.histogram("recovery.latency_seconds").summary()
        assert summary["count"] == 1
        assert summary["max"] == pytest.approx(0.125)

    def test_duplicate_retransmission_suppressed(self, clock):
        m = manager(clock)
        m.poll([10])
        m.note_arrival(10)  # retransmission arrives
        m.note_arrival(10)  # ...and its duplicate
        assert m.recovered == 1
        assert m.duplicates_suppressed == 1

    def test_cancel_removes_pending(self, clock):
        m = manager(clock)
        m.poll([10])
        m.cancel(10)
        assert m.pending == 0
        assert m.cancelled == 1
        clock.advance(10)
        # Re-reported: fresh NACK, not give-up.
        assert m.poll([10]).nack_now == [10]


class TestWraparound:
    def test_state_keyed_by_extended_seq(self, clock):
        """A missing seq after wraparound is a new loss, not the old one."""
        m = manager(clock, max_attempts=3)
        m.note_arrival(0xFFF0)
        m.poll([0xFFF2])  # loss just before wrap
        assert m.pending_attempts(0xFFF2) == 1
        m.note_arrival(0xFFF2)
        # One full cycle later the same residue goes missing again.
        for seq in (0xFFFE, 0xFFFF, 0x0000, 0xFFF0):
            m.note_arrival(seq)
        actions = m.poll([0xFFF2])
        assert actions.nack_now == [0xFFF2]
        assert m.pending_attempts(0xFFF2) == 1  # fresh entry, attempt 1

    def test_wraparound_gap_nacked_with_wire_seq(self, clock):
        m = manager(clock)
        m.note_arrival(0xFFFE)
        m.note_arrival(0x0002)
        actions = m.poll([0xFFFF, 0x0000, 0x0001])
        assert sorted(actions.nack_now) == [0x0000, 0x0001, 0xFFFF]


class TestValidation:
    def test_rejects_bad_parameters(self, clock):
        with pytest.raises(ValueError):
            RecoveryManager(now=clock.now, initial_interval=0)
        with pytest.raises(ValueError):
            RecoveryManager(now=clock.now, backoff=0.5)
        with pytest.raises(ValueError):
            RecoveryManager(now=clock.now, max_attempts=0)
        with pytest.raises(ValueError):
            RecoveryManager(now=clock.now, recovered_memory=-1)
