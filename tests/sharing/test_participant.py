"""Participant-side unit tests: message application, recovery, HIP send."""

import numpy as np
import pytest

from repro.codecs.base import default_registry
from repro.core.move_rectangle import MoveRectangle
from repro.core.region_update import RegionUpdate
from repro.core.window_info import WindowManagerInfo, WindowRecord
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.rtp.packet import RtpPacket
from repro.rtp.session import RtpSender
from repro.sharing.config import PT_REMOTING, SharingConfig
from repro.sharing.participant import Participant
from repro.sharing.transport import StreamTransport
from repro.surface.geometry import Rect


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def wired(clock):
    """A participant plus a raw sender-side handle to feed it packets."""
    link = duplex_reliable(ChannelConfig(delay=0.0), clock.now)
    feeder = StreamTransport(link.forward, link.backward)
    participant = Participant(
        "p1",
        StreamTransport(link.backward, link.forward),
        clock=clock.now,
        config=SharingConfig(),
    )
    sender = RtpSender(PT_REMOTING, ssrc=7, now=clock.now)
    return participant, feeder, sender


def send_payload(feeder, sender, payload, marker=False, timestamp=None):
    packet = sender.next_packet(payload, marker=marker, timestamp=timestamp)
    feeder.send_packet(packet.encode())


def wmi(*records):
    return WindowManagerInfo(tuple(records)).encode()


REC = WindowRecord(window_id=1, group_id=0, left=100, top=100, width=50,
                   height=40)


class TestWindowInfoApplication:
    def test_creates_windows(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        participant.process_incoming()
        assert 1 in participant.windows
        assert participant.windows[1].surface.width == 50

    def test_resize_keeps_image(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        participant.process_incoming()
        participant.windows[1].surface.fill((9, 9, 9, 255))
        bigger = WindowRecord(1, 0, 100, 100, 80, 60)
        send_payload(feeder, sender, wmi(bigger))
        participant.process_incoming()
        surface = participant.windows[1].surface
        assert (surface.width, surface.height) == (80, 60)
        assert surface.get_pixel(10, 10) == (9, 9, 9, 255)  # image kept
        assert surface.get_pixel(70, 10) == (0, 0, 0, 255)  # new area blank

    def test_absent_window_closed(self, wired):
        participant, feeder, sender = wired
        other = WindowRecord(2, 0, 0, 0, 10, 10)
        send_payload(feeder, sender, wmi(REC, other))
        participant.process_incoming()
        send_payload(feeder, sender, wmi(other))
        participant.process_incoming()
        assert set(participant.windows) == {2}


class TestRegionUpdateApplication:
    def test_update_lands_window_local(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        registry = default_registry()
        png = registry.by_name("png")
        pixels = np.full((8, 8, 4), 200, dtype=np.uint8)
        # Absolute coordinates (110, 112) → window-local (10, 12).
        update = RegionUpdate(1, 110, 112, png.payload_type, png.encode(pixels))
        send_payload(feeder, sender, update.encode_single(), marker=True)
        participant.process_incoming()
        surface = participant.windows[1].surface
        assert surface.get_pixel(10, 12) == (200, 200, 200, 200)
        assert participant.updates_applied == 1

    def test_unknown_window_ignored(self, wired):
        participant, feeder, sender = wired
        png = default_registry().by_name("png")
        data = png.encode(np.zeros((4, 4, 4), dtype=np.uint8))
        update = RegionUpdate(77, 0, 0, png.payload_type, data)
        send_payload(feeder, sender, update.encode_single(), marker=True)
        participant.process_incoming()
        assert participant.updates_applied == 0

    def test_unsupported_codec_skipped(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        update = RegionUpdate(1, 100, 100, 55, b"mystery-codec")
        send_payload(feeder, sender, update.encode_single(), marker=True)
        participant.process_incoming()
        assert participant.updates_applied == 0

    def test_corrupt_payload_survived(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        png = default_registry().by_name("png")
        update = RegionUpdate(1, 100, 100, png.payload_type, b"not a png")
        send_payload(feeder, sender, update.encode_single(), marker=True)
        participant.process_incoming()  # must not raise
        assert participant.updates_applied == 0


class TestMoveRectangleApplication:
    def test_move_applies(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        participant.process_incoming()
        surface = participant.windows[1].surface
        surface.fill((5, 5, 5, 255), Rect(0, 0, 10, 10))
        # Absolute: copy window rect (100,100,10,10) → (120,110).
        move = MoveRectangle(1, 100, 100, 10, 10, 120, 110)
        send_payload(feeder, sender, move.encode())
        participant.process_incoming()
        assert surface.get_pixel(25, 12) == (5, 5, 5, 255)
        assert participant.moves_applied == 1


class TestRenderScreen:
    def test_render_respects_local_layout_and_z(self, wired):
        participant, feeder, sender = wired
        a = WindowRecord(1, 0, 0, 0, 20, 20)
        b = WindowRecord(2, 0, 10, 10, 20, 20)
        send_payload(feeder, sender, wmi(a, b))
        participant.process_incoming()
        participant.windows[1].surface.fill((255, 0, 0, 255))
        participant.windows[2].surface.fill((0, 255, 0, 255))
        screen = participant.render_screen()
        assert screen.get_pixel(15, 15) == (0, 255, 0, 255)  # b on top
        assert screen.get_pixel(5, 5) == (255, 0, 0, 255)
        assert screen.get_pixel(600, 600) == (0, 0, 0, 255)  # blanked


class TestHipSendPath:
    def test_hip_uses_hip_payload_type(self, wired, clock):
        participant, feeder, _sender = wired
        send_wmi_first = WindowManagerInfo((REC,)).encode()
        sender = RtpSender(PT_REMOTING, ssrc=9, now=clock.now)
        feeder.send_packet(sender.next_packet(send_wmi_first).encode())
        participant.process_incoming()
        participant.click(1, 5, 5)
        packets = [RtpPacket.decode(p) for p in feeder.receive_packets()]
        assert packets
        assert all(p.payload_type == 100 for p in packets)

    def test_click_transforms_to_ah_coords(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        participant.process_incoming()
        participant.press_mouse(1, 5, 7)
        from repro.core.hip import MousePressed

        packet = RtpPacket.decode(feeder.receive_packets()[0])
        msg = MousePressed.decode(packet.payload)
        assert (msg.left, msg.top) == (105, 107)  # window at (100,100)

    def test_type_text_splits_long_strings(self, wired):
        participant, feeder, sender = wired
        send_payload(feeder, sender, wmi(REC))
        participant.process_incoming()
        participant.type_text(1, "x" * 5000)
        packets = feeder.receive_packets()
        assert len(packets) > 1

    def test_hip_messages_carry_marker(self, wired, clock):
        # Single-packet HIP messages are Not Fragmented per Table 2:
        # the marker bit must be set.
        participant, feeder, _sender = wired
        sender = RtpSender(PT_REMOTING, ssrc=9, now=clock.now)
        feeder.send_packet(sender.next_packet(wmi(REC)).encode())
        participant.process_incoming()
        participant.click(1, 5, 5)
        packets = [RtpPacket.decode(p) for p in feeder.receive_packets()]
        assert packets
        assert all(p.marker for p in packets)
