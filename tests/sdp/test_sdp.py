"""Tests for the SDP model, parser, and negotiation (section 10)."""

import pytest

from repro.sdp.model import MediaDescription, RtpMap, SdpError, SessionDescription
from repro.sdp.negotiation import build_ah_offer, negotiate
from repro.sdp.parser import parse_sdp


class TestModel:
    def test_rtpmap_line(self):
        assert RtpMap(99, "remoting", 90000).to_line() == (
            "a=rtpmap:99 remoting/90000"
        )

    def test_rtpmap_validation(self):
        with pytest.raises(SdpError):
            RtpMap(128, "x", 90000)
        with pytest.raises(SdpError):
            RtpMap(99, "bad name", 90000)

    def test_media_lines(self):
        media = MediaDescription("application", 6000, "RTP/AVP", ["99"])
        media.rtpmaps.append(RtpMap(99, "remoting", 90000))
        media.fmtp[99] = "retransmissions=yes"
        lines = media.to_lines()
        assert lines[0] == "m=application 6000 RTP/AVP 99"
        assert "a=rtpmap:99 remoting/90000" in lines
        assert "a=fmtp:99 retransmissions=yes" in lines

    def test_session_document(self):
        session = SessionDescription()
        session.add_media(MediaDescription("application", 6000, "RTP/AVP", ["99"]))
        text = session.to_string()
        assert text.startswith("v=0\r\n")
        assert "m=application 6000 RTP/AVP 99" in text

    def test_port_range(self):
        with pytest.raises(SdpError):
            MediaDescription("application", 70000, "RTP/AVP")


class TestParser:
    def test_parse_generated(self):
        offer = build_ah_offer()
        parsed = parse_sdp(offer.to_string())
        assert len(parsed.media) == len(offer.media)

    def test_roundtrip_stable(self):
        offer = build_ah_offer()
        text = offer.to_string()
        assert parse_sdp(text).to_string() == text

    def test_parse_minimal(self):
        session = parse_sdp("v=0\no=- 1 1 IN IP4 10.0.0.1\ns=Test\n")
        assert session.session_name == "Test"
        assert session.origin_address == "10.0.0.1"

    def test_missing_version_rejected(self):
        with pytest.raises(SdpError):
            parse_sdp("s=NoVersion\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(SdpError):
            parse_sdp("v=0\nthisisnota line\n")

    def test_unknown_attribute_kept(self):
        text = (
            "v=0\nm=application 6000 RTP/AVP 99\n"
            "a=rtpmap:99 remoting/90000\na=sendonly\n"
        )
        session = parse_sdp(text)
        assert session.media[0].has_attribute("sendonly")


class TestSection103Example:
    """The SDP example of section 10.3, parsed and interpreted."""

    EXAMPLE = "\n".join(
        [
            "v=0",
            "o=- 0 0 IN IP4 127.0.0.1",
            "s=Application Sharing",
            "c=IN IP4 127.0.0.1",
            "t=0 0",
            "m=application 50000 TCP/BFCP *",
            "a=floorid:0 m-stream:10",
            "m=application 6000 RTP/AVP 99",
            "a=rtpmap:99 remoting/90000",
            "a=fmtp: retransmissions=yes",
            "m=application 6000 TCP/RTP/AVP 99",
            "a=rtpmap:99 remoting/90000",
            "m=application 6006 TCP/RTP/AVP 100",
            "a=rtpmap:99 hip/90000",
            "a=label:10",
        ]
    )

    def test_parses(self):
        session = parse_sdp(self.EXAMPLE)
        assert len(session.media) == 4

    def test_same_port_for_tcp_and_udp_remoting(self):
        """'The port numbers MUST be same if AH is remoting the same
        content over both TCP and UDP.'"""
        session = parse_sdp(self.EXAMPLE)
        remoting = session.media_with_encoding("remoting")
        assert len({m.port for m in remoting}) == 1

    def test_bfcp_association(self):
        session = parse_sdp(self.EXAMPLE)
        bfcp = session.media_by_proto("TCP/BFCP")[0]
        assert bfcp.attribute("floorid") == "0 m-stream:10"
        hip = session.media_with_encoding("hip")[0]
        assert hip.attribute("label") == "10"

    def test_retransmissions_parsed_despite_missing_pt(self):
        """The draft's own example writes 'a=fmtp: retransmissions=yes'
        without a payload type — the parser tolerates it."""
        session = parse_sdp(self.EXAMPLE)
        udp = session.media_by_proto("RTP/AVP")[0]
        assert any("retransmissions=yes" in v for v in udp.fmtp.values())


class TestBuildOffer:
    def test_shapes_like_draft_example(self):
        offer = build_ah_offer(
            remoting_port=6000, hip_port=6006, bfcp_port=50000
        )
        text = offer.to_string()
        assert "m=application 50000 TCP/BFCP" in text
        assert "m=application 6000 RTP/AVP 99" in text
        assert "m=application 6000 TCP/RTP/AVP 99" in text
        assert "a=rtpmap:99 remoting/90000" in text
        assert "a=rtpmap:100 hip/90000" in text
        assert "a=label:10" in text
        assert "retransmissions=yes" in text

    def test_retransmissions_no(self):
        offer = build_ah_offer(retransmissions=False)
        assert "retransmissions=no" in offer.to_string()

    def test_udp_only(self):
        offer = build_ah_offer(offer_tcp=False)
        assert not offer.media_by_proto("TCP/RTP/AVP") or all(
            m.rtpmap_for("remoting") is None
            for m in offer.media_by_proto("TCP/RTP/AVP")
        )

    def test_no_transports_rejected(self):
        with pytest.raises(SdpError):
            build_ah_offer(offer_udp=False, offer_tcp=False)


class TestNegotiate:
    def test_prefer_tcp(self):
        agreed = negotiate(build_ah_offer(), prefer_transport="tcp")
        assert agreed.transport == "tcp"
        assert agreed.remoting_port == 6000
        assert agreed.remoting_pt == 99
        assert agreed.hip_pt == 100
        assert agreed.clock_rate == 90000

    def test_prefer_udp_gets_retransmissions(self):
        agreed = negotiate(build_ah_offer(), prefer_transport="udp")
        assert agreed.transport == "udp"
        assert agreed.retransmissions

    def test_fallback_when_preferred_missing(self):
        offer = build_ah_offer(offer_udp=False)
        agreed = negotiate(offer, prefer_transport="udp")
        assert agreed.transport == "tcp"

    def test_bfcp_association_extracted(self):
        agreed = negotiate(build_ah_offer())
        assert agreed.bfcp_port == 50_000
        assert agreed.floor_id == 0
        assert agreed.hip_label == 10

    def test_no_remoting_rejected(self):
        session = SessionDescription()
        with pytest.raises(SdpError):
            negotiate(session)

    def test_mismatched_label_rejected(self):
        offer = build_ah_offer()
        hip = offer.media_with_encoding("hip")[0]
        hip.attributes = [("label", "99")]
        with pytest.raises(SdpError):
            negotiate(offer)

    def test_bad_preference(self):
        with pytest.raises(SdpError):
            negotiate(build_ah_offer(), prefer_transport="carrier-pigeon")
