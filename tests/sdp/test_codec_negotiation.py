"""Tests for image-codec negotiation through SDP (section 5.2.2)."""

from repro.codecs.base import default_registry
from repro.sdp import build_ah_offer, negotiate, parse_sdp


class TestCodecParameter:
    def test_offer_carries_codecs(self):
        offer = build_ah_offer(codecs=["png", "lossy-dct", "zlib"])
        assert "codecs=png,lossy-dct,zlib" in offer.to_string()

    def test_negotiate_extracts_codecs(self):
        offer = build_ah_offer(codecs=["png", "lossy-dct"])
        agreed = negotiate(parse_sdp(offer.to_string()))
        assert agreed.offered_codecs == ("png", "lossy-dct")

    def test_absent_parameter_means_empty(self):
        agreed = negotiate(build_ah_offer())
        assert agreed.offered_codecs == ()

    def test_tcp_only_offer_still_carries_codecs(self):
        offer = build_ah_offer(offer_udp=False, codecs=["png"])
        agreed = negotiate(parse_sdp(offer.to_string()))
        assert agreed.offered_codecs == ("png",)

    def test_intersection_with_local_registry(self):
        """The participant keeps only codecs it also implements."""
        offer = build_ah_offer(codecs=["png", "theora", "zlib"])
        agreed = negotiate(parse_sdp(offer.to_string()))
        registry = default_registry()
        usable = registry.intersect_names(list(agreed.offered_codecs))
        assert usable == ["png", "zlib"]  # theora not implemented locally

    def test_retransmissions_still_parsed_alongside(self):
        offer = build_ah_offer(codecs=["png"], retransmissions=True)
        agreed = negotiate(parse_sdp(offer.to_string()),
                           prefer_transport="udp")
        assert agreed.retransmissions
        assert agreed.offered_codecs == ("png",)
