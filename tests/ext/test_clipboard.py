"""Tests for the clipboard extension and the extension mechanism."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.registry import remoting_registry
from repro.ext.clipboard import (
    MSG_CLIPBOARD_UPDATE,
    ClipboardSync,
    ClipboardUpdate,
    register,
)
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.surface.geometry import Rect

from tests.integration.helpers import settle, tcp_pair


class TestWireFormat:
    def test_roundtrip(self):
        update = ClipboardUpdate("copied text — ünïcode ☃")
        assert ClipboardUpdate.decode(update.encode()) == update

    def test_type_value(self):
        assert ClipboardUpdate("x").encode()[0] == MSG_CLIPBOARD_UPDATE == 5

    def test_wrong_type_rejected(self):
        data = bytearray(ClipboardUpdate("x").encode())
        data[0] = 2
        with pytest.raises(ProtocolError):
            ClipboardUpdate.decode(bytes(data))

    def test_unknown_format_rejected(self):
        data = bytearray(ClipboardUpdate("x").encode())
        data[1] = 9
        with pytest.raises(ProtocolError):
            ClipboardUpdate.decode(bytes(data))


class TestRegistryIntegration:
    def test_registers_value_5(self):
        registry = remoting_registry()
        register(registry)
        entry = registry.lookup(5)
        assert entry is not None and entry.name == "ClipboardUpdate"

    def test_double_registration_rejected(self):
        registry = remoting_registry()
        register(registry)
        with pytest.raises(ProtocolError):
            register(registry)


class TestEndToEnd:
    def _session(self, with_extension: bool):
        clock = SimulatedClock()
        ah = ApplicationHost(clock=clock.now)
        ah.windows.create_window(Rect(0, 0, 100, 100))
        clipboard = ClipboardSync()
        participant = tcp_pair(clock, ah)
        if with_extension:
            participant.extension_handlers[MSG_CLIPBOARD_UPDATE] = (
                clipboard.participant_handler
            )
        settle(clock, ah, [participant], 30)
        return clock, ah, participant, clipboard

    def test_ah_to_participant(self):
        clock, ah, participant, clipboard = self._session(True)
        ClipboardSync().push(ah.sessions["p1"], "shared snippet")
        settle(clock, ah, [participant], 20)
        assert clipboard.content == "shared snippet"
        assert clipboard.updates_received == 1

    def test_legacy_participant_ignores_unknown_type(self):
        """Participants MAY ignore unregistered extension types — an
        old participant keeps working when the AH sends clipboard."""
        clock, ah, participant, _ = self._session(False)
        ClipboardSync().push(ah.sessions["p1"], "ignored")
        settle(clock, ah, [participant], 20)
        assert participant.converged_with(ah.windows)  # unharmed
        assert participant.malformed_dropped == 0  # ignored, not an error

    def test_participant_to_ah(self):
        clock, ah, participant, _ = self._session(True)
        ah_clipboard = ClipboardSync()
        ah.extension_handlers[MSG_CLIPBOARD_UPDATE] = (
            lambda pid, payload, packet: ah_clipboard.participant_handler(
                payload, packet
            )
        )
        sync = ClipboardSync()
        sync.send_from_participant(participant, "pasted upstream")
        settle(clock, ah, [participant], 20)
        assert ah_clipboard.content == "pasted upstream"

    def test_ah_without_handler_ignores(self):
        clock, ah, participant, _ = self._session(True)
        sync = ClipboardSync()
        sync.send_from_participant(participant, "nobody listens")
        settle(clock, ah, [participant], 20)
        assert ah.injector.stats.rejected_unknown_type == 1
