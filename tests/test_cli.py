"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs_and_converges(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "converged pixel-exact: True" in out
        assert "final convergence: True" in out
        assert "HIP flows back" in out


class TestOffer:
    def test_offer_prints_sdp(self, capsys):
        assert main(["offer"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("v=0")
        assert "a=rtpmap:99 remoting/90000" in out
        assert "retransmissions=yes" in out

    def test_offer_options(self, capsys):
        assert main(
            ["offer", "--port", "7000", "--no-retransmissions",
             "--codecs", "png,zlib"]
        ) == 0
        out = capsys.readouterr().out
        assert "m=application 7000 RTP/AVP" in out
        assert "retransmissions=no" in out
        assert "codecs=png,zlib" in out


class TestInfo:
    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WindowManagerInfo" in out
        assert "127  KeyTyped" in out
        assert "png (lossless)" in out
        assert "lossy-dct (lossy)" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
