"""Tests for PLI and Generic NACK (RFC 4585, draft section 5.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.feedback import (
    GenericNack,
    NackEntry,
    PictureLossIndication,
    nacks_for,
    pack_nack_entries,
)
from repro.rtp.rtcp import RtcpError, decode_compound


class TestPli:
    def test_roundtrip(self):
        pli = PictureLossIndication(sender_ssrc=11, media_ssrc=22)
        assert decode_compound(pli.encode()) == [pli]

    def test_wire_format(self):
        data = PictureLossIndication(1, 2).encode()
        assert data[1] == 206  # PSFB
        assert data[0] & 0x1F == 1  # FMT=1 (PLI)
        assert len(data) == 12


class TestNackEntry:
    def test_expansion_single(self):
        assert NackEntry(100, 0).sequence_numbers() == [100]

    def test_expansion_with_blp(self):
        entry = NackEntry(100, 0b101)
        assert entry.sequence_numbers() == [100, 101, 103]

    def test_expansion_wraps(self):
        entry = NackEntry(0xFFFF, 0b1)
        assert entry.sequence_numbers() == [0xFFFF, 0]

    def test_bounds(self):
        with pytest.raises(RtcpError):
            NackEntry(0x10000, 0)
        with pytest.raises(RtcpError):
            NackEntry(0, 0x10000)


class TestPackEntries:
    def test_empty(self):
        assert pack_nack_entries([]) == ()

    def test_single(self):
        entries = pack_nack_entries([500])
        assert len(entries) == 1
        assert entries[0] == NackEntry(500, 0)

    def test_run_packs_into_one(self):
        entries = pack_nack_entries(list(range(100, 117)))  # 17 seqs
        assert len(entries) == 1
        assert entries[0].pid == 100
        assert entries[0].blp == 0xFFFF

    def test_long_run_splits(self):
        entries = pack_nack_entries(list(range(100, 140)))
        assert len(entries) == 3

    def test_duplicates_ignored(self):
        assert pack_nack_entries([7, 7, 7]) == (NackEntry(7, 0),)

    def test_wraparound_sequences(self):
        entries = pack_nack_entries([0xFFFE, 0xFFFF, 0, 1])
        covered = set()
        for entry in entries:
            covered.update(entry.sequence_numbers())
        assert {0xFFFE, 0xFFFF, 0, 1} <= covered

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40))
    def test_pack_covers_exactly(self, seqs):
        entries = pack_nack_entries(seqs)
        covered = set()
        for entry in entries:
            covered.update(entry.sequence_numbers())
        assert set(s & 0xFFFF for s in seqs) <= covered


class TestGenericNack:
    def test_roundtrip(self):
        nack = GenericNack(1, 2, (NackEntry(100, 0b11), NackEntry(500, 0)))
        assert decode_compound(nack.encode()) == [nack]

    def test_wire_format(self):
        data = GenericNack(1, 2, (NackEntry(3, 4),)).encode()
        assert data[1] == 205  # RTPFB
        assert data[0] & 0x1F == 1  # FMT=1 (Generic NACK)

    def test_empty_rejected(self):
        with pytest.raises(RtcpError):
            GenericNack(1, 2, ()).encode()

    def test_sequence_numbers_helper(self):
        nack = GenericNack(1, 2, (NackEntry(10, 0b1),))
        assert nack.sequence_numbers() == [10, 11]

    def test_nacks_for_none_when_empty(self):
        assert nacks_for(1, 2, []) is None

    def test_nacks_for_builds(self):
        nack = nacks_for(1, 2, [5, 6, 30])
        assert nack is not None
        assert set(nack.sequence_numbers()) == {5, 6, 30}

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=30))
    def test_roundtrip_property(self, seqs):
        nack = nacks_for(9, 8, seqs)
        assert nack is not None
        decoded = decode_compound(nack.encode())[0]
        assert set(s & 0xFFFF for s in seqs) <= set(decoded.sequence_numbers())


class TestPackEntriesEdgeCases:
    """Table-driven pins for the PID+BLP boundary arithmetic.

    BLP bit ``n`` covers ``PID + n + 1``; bit 15 is ``PID + 16``, and
    ``PID + 17`` must start a fresh entry.  All offsets are mod 2^16.
    """

    def test_table(self):
        cases = [
            # (missing, expected entries)
            ([100, 116], (NackEntry(100, 1 << 15),)),        # PID+16: last BLP bit
            ([100, 117], (NackEntry(100, 0), NackEntry(117, 0))),  # PID+17 splits
            ([100, 101], (NackEntry(100, 1 << 0),)),         # PID+1: first BLP bit
            ([0xFFFF, 0x0000], (NackEntry(0xFFFF, 1 << 0),)),  # wrap inside BLP
            ([0xFFF0, 0x0000], (NackEntry(0xFFF0, 1 << 15),)),  # PID+16 across wrap
            ([0xFFF0, 0x0001], (NackEntry(0xFFF0, 0), NackEntry(0x0001, 0))),
            (
                [0xFFFE, 0xFFFF, 0x0000, 0x0001],
                (NackEntry(0xFFFE, 0b111),),
            ),
        ]
        for missing, expected in cases:
            assert pack_nack_entries(missing) == expected, missing

    def test_full_blp_window(self):
        entries = pack_nack_entries([(0xFFF8 + i) & 0xFFFF for i in range(17)])
        assert entries == (NackEntry(0xFFF8, 0xFFFF),)

    def test_rotation_picks_oldest_across_wrap(self):
        """[0, 0xFFFF] is the run 0xFFFF,0x0000 — not two entries
        anchored at 0."""
        assert pack_nack_entries([0, 0xFFFF]) == (NackEntry(0xFFFF, 1),)

    def test_extended_inputs_reduced_mod_2_16(self):
        assert pack_nack_entries([0x1_0005, 0x1_0006]) == (
            NackEntry(5, 1),
        )

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40))
    def test_pack_never_over_covers(self, seqs):
        """Entries cover the requested seqs and nothing else."""
        wanted = set(s & 0xFFFF for s in seqs)
        covered = set()
        for entry in pack_nack_entries(seqs):
            covered.update(entry.sequence_numbers())
        assert covered == wanted
