"""Tests for sequence arithmetic, loss accounting, and gap detection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.sequence import (
    GapDetector,
    SequenceTracker,
    seq_delta,
    seq_newer,
)


class TestSeqCompare:
    def test_simple_order(self):
        assert seq_newer(5, 4)
        assert not seq_newer(4, 5)
        assert not seq_newer(7, 7)

    def test_wraparound(self):
        assert seq_newer(3, 0xFFFE)
        assert not seq_newer(0xFFFE, 3)

    def test_delta(self):
        assert seq_delta(10, 5) == 5
        assert seq_delta(5, 10) == -5
        assert seq_delta(2, 0xFFFF) == 3
        assert seq_delta(0xFFFF, 2) == -3

    @given(st.integers(0, 0xFFFF), st.integers(-1000, 1000))
    def test_delta_inverse(self, base, offset):
        other = (base + offset) % 0x10000
        assert seq_delta(other, base) == offset


class TestSequenceTracker:
    def test_in_order_no_loss(self):
        tracker = SequenceTracker()
        for seq in range(100, 150):
            assert tracker.update(seq)
        stats = tracker.stats()
        assert stats.packets_received == 50
        assert stats.packets_lost == 0

    def test_counts_losses(self):
        tracker = SequenceTracker()
        for seq in [1, 2, 3, 6, 7]:  # 4, 5 missing
            tracker.update(seq)
        stats = tracker.stats()
        assert stats.packets_expected == 7
        assert stats.packets_lost == 2

    def test_wraparound_extends(self):
        tracker = SequenceTracker()
        for seq in [0xFFFE, 0xFFFF, 0, 1]:
            tracker.update(seq)
        assert tracker.extended_highest_seq == 0x10001
        assert tracker.stats().packets_lost == 0

    def test_reordered_within_tolerance(self):
        tracker = SequenceTracker()
        for seq in [10, 11, 13, 12, 14]:
            assert tracker.update(seq)
        assert tracker.stats().packets_lost == 0

    def test_big_jump_rejected_then_restart(self):
        tracker = SequenceTracker()
        tracker.update(10)
        assert not tracker.update(40_000)  # suspicious
        assert tracker.update(40_001)  # repeated: stream restarted
        assert tracker.stats().packets_received == 1

    def test_jitter_updates(self):
        tracker = SequenceTracker(clock_rate=90_000)
        # Packets 20ms apart in RTP time arriving with variable delay.
        tracker.update(1, 0, 0.000)
        tracker.update(2, 1800, 0.030)  # 10ms late
        tracker.update(3, 3600, 0.040)
        assert tracker.stats().jitter_seconds > 0

    def test_empty_stats(self):
        assert SequenceTracker().stats().packets_received == 0


class TestGapDetector:
    def test_no_gaps_in_order(self):
        detector = GapDetector()
        for seq in range(10):
            detector.record(seq)
        assert detector.missing() == []

    def test_detects_hole(self):
        detector = GapDetector()
        for seq in [5, 6, 8, 9]:
            detector.record(seq)
        assert detector.missing() == [7]

    def test_multiple_holes_ordered(self):
        detector = GapDetector()
        for seq in [1, 4, 7]:
            detector.record(seq)
        assert detector.missing() == [2, 3, 5, 6]

    def test_acknowledge_fills(self):
        detector = GapDetector()
        for seq in [1, 3]:
            detector.record(seq)
        assert detector.missing() == [2]
        detector.acknowledge(2)
        assert detector.missing() == []

    def test_wraparound_gap(self):
        detector = GapDetector()
        detector.record(0xFFFE)
        detector.record(1)  # 0xFFFF and 0 missing
        assert detector.missing() == [0xFFFF, 0]

    def test_window_bound(self):
        detector = GapDetector(max_tracked=16)
        detector.record(0)
        detector.record(100)  # far beyond window
        missing = detector.missing()
        assert len(missing) <= 16
        assert all((100 - m) % 0x10000 <= 16 for m in missing)

    def test_no_history_before_first_packet(self):
        detector = GapDetector()
        detector.record(500)
        assert detector.missing() == []

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_missing_disjoint_from_seen(self, seqs):
        detector = GapDetector(max_tracked=128)
        for seq in seqs:
            detector.record(seq)
        missing = set(detector.missing())
        assert missing.isdisjoint(set(seqs))
