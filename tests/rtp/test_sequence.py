"""Tests for sequence arithmetic, loss accounting, and gap detection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.sequence import (
    GapDetector,
    SequenceTracker,
    seq_delta,
    seq_newer,
)


class TestSeqCompare:
    def test_simple_order(self):
        assert seq_newer(5, 4)
        assert not seq_newer(4, 5)
        assert not seq_newer(7, 7)

    def test_wraparound(self):
        assert seq_newer(3, 0xFFFE)
        assert not seq_newer(0xFFFE, 3)

    def test_delta(self):
        assert seq_delta(10, 5) == 5
        assert seq_delta(5, 10) == -5
        assert seq_delta(2, 0xFFFF) == 3
        assert seq_delta(0xFFFF, 2) == -3

    @given(st.integers(0, 0xFFFF), st.integers(-1000, 1000))
    def test_delta_inverse(self, base, offset):
        other = (base + offset) % 0x10000
        assert seq_delta(other, base) == offset


class TestSequenceTracker:
    def test_in_order_no_loss(self):
        tracker = SequenceTracker()
        for seq in range(100, 150):
            assert tracker.update(seq)
        stats = tracker.stats()
        assert stats.packets_received == 50
        assert stats.packets_lost == 0

    def test_counts_losses(self):
        tracker = SequenceTracker()
        for seq in [1, 2, 3, 6, 7]:  # 4, 5 missing
            tracker.update(seq)
        stats = tracker.stats()
        assert stats.packets_expected == 7
        assert stats.packets_lost == 2

    def test_wraparound_extends(self):
        tracker = SequenceTracker()
        for seq in [0xFFFE, 0xFFFF, 0, 1]:
            tracker.update(seq)
        assert tracker.extended_highest_seq == 0x10001
        assert tracker.stats().packets_lost == 0

    def test_reordered_within_tolerance(self):
        tracker = SequenceTracker()
        for seq in [10, 11, 13, 12, 14]:
            assert tracker.update(seq)
        assert tracker.stats().packets_lost == 0

    def test_big_jump_rejected_then_restart(self):
        tracker = SequenceTracker()
        tracker.update(10)
        assert not tracker.update(40_000)  # suspicious
        assert tracker.update(40_001)  # repeated: stream restarted
        assert tracker.stats().packets_received == 1

    def test_jitter_updates(self):
        tracker = SequenceTracker(clock_rate=90_000)
        # Packets 20ms apart in RTP time arriving with variable delay.
        tracker.update(1, 0, 0.000)
        tracker.update(2, 1800, 0.030)  # 10ms late
        tracker.update(3, 3600, 0.040)
        assert tracker.stats().jitter_seconds > 0

    def test_empty_stats(self):
        assert SequenceTracker().stats().packets_received == 0


class TestGapDetector:
    def test_no_gaps_in_order(self):
        detector = GapDetector()
        for seq in range(10):
            detector.record(seq)
        assert detector.missing() == []

    def test_detects_hole(self):
        detector = GapDetector()
        for seq in [5, 6, 8, 9]:
            detector.record(seq)
        assert detector.missing() == [7]

    def test_multiple_holes_ordered(self):
        detector = GapDetector()
        for seq in [1, 4, 7]:
            detector.record(seq)
        assert detector.missing() == [2, 3, 5, 6]

    def test_acknowledge_fills(self):
        detector = GapDetector()
        for seq in [1, 3]:
            detector.record(seq)
        assert detector.missing() == [2]
        detector.acknowledge(2)
        assert detector.missing() == []

    def test_wraparound_gap(self):
        detector = GapDetector()
        detector.record(0xFFFE)
        detector.record(1)  # 0xFFFF and 0 missing
        assert detector.missing() == [0xFFFF, 0]

    def test_window_bound(self):
        detector = GapDetector(max_tracked=16)
        detector.record(0)
        detector.record(100)  # far beyond window
        missing = detector.missing()
        assert len(missing) <= 16
        assert all((100 - m) % 0x10000 <= 16 for m in missing)

    def test_no_history_before_first_packet(self):
        detector = GapDetector()
        detector.record(500)
        assert detector.missing() == []

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_missing_disjoint_from_seen(self, seqs):
        detector = GapDetector(max_tracked=128)
        for seq in seqs:
            detector.record(seq)
        missing = set(detector.missing())
        assert missing.isdisjoint(set(seqs))


class TestHalfRangeBoundary:
    """Pin the deliberately non-total behaviour at exactly 2^15 apart.

    RFC 3550 leaves the half-range comparison undefined; the
    implementation picks "neither is newer" and resolves the delta to
    -2^15 (two's complement convention).  These tables keep anyone from
    "fixing" that silently.
    """

    def test_neither_newer_at_half_range(self):
        for a, b in [(0x8000, 0x0000), (0x0000, 0x8000),
                     (0x9234, 0x1234), (0x1234, 0x9234)]:
            assert not seq_newer(a, b), (a, b)

    def test_delta_table(self):
        cases = [
            # (a, b, expected)
            (0, 0, 0),
            (1, 0, 1),
            (0, 1, -1),
            (0x7FFF, 0x0000, 0x7FFF),   # largest forward distance
            (0x0000, 0x7FFF, -0x7FFF),
            (0x8000, 0x0000, -0x8000),  # ambiguous: resolves negative
            (0x0000, 0x8000, -0x8000),  # ...in both directions
            (0x8001, 0x0000, -0x7FFF),
            (0x0000, 0xFFFF, 1),        # wrap
            (0xFFFF, 0x0000, -1),
        ]
        for a, b, expected in cases:
            assert seq_delta(a, b) == expected, (a, b)

    def test_delta_antisymmetric_except_half_range(self):
        assert seq_delta(0x8000, 0) == seq_delta(0, 0x8000) == -0x8000

    def test_newer_table_near_wrap(self):
        cases = [
            (0x0000, 0xFFFF, True),
            (0xFFFF, 0x0000, False),
            (0x0005, 0xFFF0, True),
            (0xFFF0, 0x0005, False),
            (0x7FFF, 0x0000, True),   # just inside half range
            (0x0000, 0x7FFF, False),
        ]
        for a, b, expected in cases:
            assert seq_newer(a, b) is expected, (a, b)


class TestSequenceExtender:
    def make(self):
        from repro.rtp.sequence import SequenceExtender

        return SequenceExtender()

    def test_monotone_stream(self):
        ext = self.make()
        assert [ext.extend(s) for s in (10, 11, 12)] == [10, 11, 12]
        assert ext.highest == 12

    def test_wraparound_advances_cycle(self):
        ext = self.make()
        for seq in (0xFFFE, 0xFFFF):
            ext.extend(seq)
        assert ext.extend(0x0000) == 0x10000
        assert ext.extend(0x0001) == 0x10001
        assert ext.highest == 0x10001

    def test_reordered_resolves_backwards(self):
        ext = self.make()
        ext.extend(0xFFFF)
        ext.extend(0x0002)  # extended 0x10002
        # Late straggler from before the wrap.
        assert ext.extend(0xFFFD) == 0xFFFD
        assert ext.highest == 0x10002  # unchanged by the straggler

    def test_multiple_cycles(self):
        ext = self.make()
        seq = 0
        # Strides of 0x4000 stay well inside the unambiguous half range.
        for _ in range(3 * 4 + 1):
            ext.extend(seq & 0xFFFF)
            seq += 0x4000
        assert ext.highest == 3 * 0x10000

    def test_already_extended_reanchors(self):
        ext = self.make()
        ext.extend(5)
        assert ext.extend(0x2_0005) == 0x2_0005
        assert ext.extend(6) == 0x2_0006

    def test_backwards_past_zero_clamps(self):
        ext = self.make()
        ext.extend(2)
        # A residue "before the stream started" cannot go negative.
        assert ext.extend(0xFFF0) >= 0


class TestSequenceTrackerCycles:
    """Cycle-boundary coverage: loss accounting through wraparound and
    the MAX_DROPOUT / MAX_MISORDER restart heuristics."""

    def test_loss_counted_across_wraparound(self):
        from repro.rtp.sequence import SequenceTracker

        tracker = SequenceTracker()
        # 0xFFFD..0xFFFF then 2..4: seqs 0 and 1 lost across the wrap.
        for seq in (0xFFFD, 0xFFFE, 0xFFFF, 2, 3, 4):
            assert tracker.update(seq)
        stats = tracker.stats()
        assert tracker.extended_highest_seq == 0x10004
        assert stats.packets_expected == 8
        assert stats.packets_lost == 2

    def test_multiple_cycles_extend(self):
        from repro.rtp.sequence import SequenceTracker

        tracker = SequenceTracker()
        seq = 0xFF00
        for _ in range(3 * 0x10000 // 0x100):
            tracker.update(seq & 0xFFFF)
            seq += 0x100  # strides below MAX_DROPOUT
        assert tracker.extended_highest_seq >= 3 * 0x10000

    def test_dropout_boundary(self):
        from repro.rtp.sequence import MAX_DROPOUT, SequenceTracker

        tracker = SequenceTracker()
        tracker.update(0)
        # Jump of MAX_DROPOUT-1 is accepted as (huge) loss...
        assert tracker.update(MAX_DROPOUT - 1)
        # ...but a jump of MAX_DROPOUT is suspicious.
        tracker2 = SequenceTracker()
        tracker2.update(0)
        assert not tracker2.update(MAX_DROPOUT)

    def test_restart_resets_loss_accounting(self):
        from repro.rtp.sequence import SequenceTracker

        tracker = SequenceTracker()
        for seq in (10, 11, 12):
            tracker.update(seq)
        assert not tracker.update(40_000)   # rejected once
        assert tracker.update(40_001)       # consecutive: restart accepted
        stats = tracker.stats()
        assert stats.packets_received == 1  # accounting restarted
        assert stats.packets_lost == 0

    def test_misorder_tolerated_near_wrap(self):
        from repro.rtp.sequence import SequenceTracker

        tracker = SequenceTracker()
        for seq in (0xFFFE, 0xFFFF, 0x0000):
            tracker.update(seq)
        # A straggler from just before the wrap: within MAX_MISORDER.
        assert tracker.update(0xFFFD)
        assert tracker.extended_highest_seq == 0x10000
        assert tracker.stats().packets_lost == 0

    def test_wrap_not_double_counted_on_reorder(self):
        from repro.rtp.sequence import SequenceTracker

        tracker = SequenceTracker()
        for seq in (0xFFFE, 0x0000, 0xFFFF, 0x0001):
            tracker.update(seq)
        assert tracker.extended_highest_seq == 0x10001
        assert tracker.stats().packets_lost == 0
