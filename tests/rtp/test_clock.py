"""Tests for media clocks."""

import random

import pytest

from repro.rtp.clock import DEFAULT_CLOCK_RATE, MediaClock, SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == pytest.approx(1.75)

    def test_callable(self):
        clock = SimulatedClock(5.0)
        assert clock() == 5.0

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestMediaClock:
    def test_default_rate_is_90khz(self):
        assert DEFAULT_CLOCK_RATE == 90_000

    def test_ticks_at_rate(self):
        clock = MediaClock(rate=90_000, initial_timestamp=0)
        assert clock.timestamp_at(1.0) == 90_000
        assert clock.timestamp_at(0.5) == 45_000

    def test_random_initial_timestamp(self):
        """'the initial value of the timestamp MUST be random' (5.1.1)."""
        values = {
            MediaClock(rng=random.Random(i)).initial_timestamp for i in range(8)
        }
        assert len(values) > 1

    def test_wraparound(self):
        clock = MediaClock(rate=90_000, initial_timestamp=2**32 - 45_000)
        assert clock.timestamp_at(1.0) == 45_000

    def test_seconds_between(self):
        clock = MediaClock(rate=90_000, initial_timestamp=0)
        a = clock.timestamp_at(1.0)
        b = clock.timestamp_at(3.5)
        assert clock.seconds_between(a, b) == pytest.approx(2.5)

    def test_seconds_between_negative(self):
        clock = MediaClock(rate=90_000, initial_timestamp=0)
        a = clock.timestamp_at(2.0)
        b = clock.timestamp_at(1.0)
        assert clock.seconds_between(a, b) == pytest.approx(-1.0)

    def test_seconds_between_across_wrap(self):
        clock = MediaClock(rate=90_000, initial_timestamp=2**32 - 10)
        a = clock.timestamp_at(0.0)
        b = clock.timestamp_at(1.0)
        assert clock.seconds_between(a, b) == pytest.approx(1.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            MediaClock(rate=0)

    def test_bad_initial(self):
        with pytest.raises(ValueError):
            MediaClock(initial_timestamp=2**32)
