"""Tests for RTP sender/receiver session state."""

import random

from repro.rtp.clock import MediaClock, SimulatedClock
from repro.rtp.session import RtpReceiver, RtpSender, generate_ssrc


class TestGenerateSsrc:
    def test_avoids_taken(self):
        rng = random.Random(1)
        taken = {generate_ssrc(rng) for _ in range(5)}
        fresh = generate_ssrc(random.Random(1), taken=taken)
        assert fresh not in taken

    def test_nonzero(self):
        assert generate_ssrc(random.Random(0)) != 0


class TestRtpSender:
    def test_sequence_increments(self):
        sender = RtpSender(99, rng=random.Random(7))
        a = sender.next_packet(b"a")
        b = sender.next_packet(b"b")
        assert (a.sequence_number + 1) & 0xFFFF == b.sequence_number

    def test_random_initial_sequence(self):
        values = {
            RtpSender(99, rng=random.Random(i)).next_packet(b"").sequence_number
            for i in range(6)
        }
        assert len(values) > 1

    def test_timestamp_from_clock(self):
        clock = SimulatedClock()
        sender = RtpSender(
            99,
            clock=MediaClock(initial_timestamp=0),
            now=clock.now,
            rng=random.Random(0),
        )
        clock.advance(1.0)
        assert sender.next_packet(b"x").timestamp == 90_000

    def test_timestamp_override_shared_by_fragments(self):
        sender = RtpSender(99, rng=random.Random(0))
        ts = sender.current_timestamp()
        packets = [sender.next_packet(b"x", timestamp=ts) for _ in range(3)]
        assert len({p.timestamp for p in packets}) == 1

    def test_counters(self):
        sender = RtpSender(99, rng=random.Random(0))
        sender.next_packet(b"abc")
        sender.next_packet(b"de")
        assert sender.packets_sent == 2
        assert sender.octets_sent == 5

    def test_wraparound(self):
        sender = RtpSender(99, rng=random.Random(0))
        sender._next_seq = 0xFFFF
        a = sender.next_packet(b"")
        b = sender.next_packet(b"")
        assert a.sequence_number == 0xFFFF
        assert b.sequence_number == 0


class TestRtpReceiver:
    def test_accounting(self):
        clock = SimulatedClock()
        sender = RtpSender(99, now=clock.now, rng=random.Random(0))
        receiver = RtpReceiver(now=clock.now)
        for _ in range(10):
            received = receiver.receive(sender.next_packet(b"abc"))
            assert received.valid
            clock.advance(0.02)
        assert receiver.packets_received == 10
        assert receiver.octets_received == 30
        assert receiver.stats().packets_lost == 0

    def test_ssrc_latch(self):
        clock = SimulatedClock()
        receiver = RtpReceiver(now=clock.now)
        sender_a = RtpSender(99, ssrc=1, rng=random.Random(0))
        sender_b = RtpSender(99, ssrc=2, rng=random.Random(0))
        assert receiver.receive(sender_a.next_packet(b"")).valid
        assert not receiver.receive(sender_b.next_packet(b"")).valid

    def test_missing_reported(self):
        clock = SimulatedClock()
        sender = RtpSender(99, now=clock.now, rng=random.Random(3))
        receiver = RtpReceiver(now=clock.now)
        packets = [sender.next_packet(b"") for _ in range(6)]
        for i, packet in enumerate(packets):
            if i != 3:
                receiver.receive(packet)
        assert receiver.missing_sequence_numbers() == [
            packets[3].sequence_number
        ]
