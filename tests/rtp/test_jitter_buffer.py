"""Tests for the reordering jitter buffer."""

import pytest

from repro.rtp.clock import SimulatedClock
from repro.rtp.jitter_buffer import JitterBuffer
from repro.rtp.packet import RtpPacket


def packet(seq: int) -> RtpPacket:
    return RtpPacket(99, seq, seq * 100, 1, payload=bytes([seq & 0xFF]))


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def buf(clock):
    return JitterBuffer(now=clock.now, max_wait=0.05)


def seqs(packets):
    return [p.sequence_number for p in packets]


class TestInOrder:
    def test_immediate_release(self, buf):
        buf.insert(packet(1))
        buf.insert(packet(2))
        assert seqs(buf.pop_ready()) == [1, 2]

    def test_empty_pop(self, buf):
        assert buf.pop_ready() == []


class TestReordering:
    def test_reordered_released_in_order(self, buf):
        buf.insert(packet(10))
        buf.insert(packet(12))
        buf.insert(packet(11))
        assert seqs(buf.pop_ready()) == [10, 11, 12]

    def test_hole_blocks_release(self, buf):
        buf.insert(packet(1))
        buf.insert(packet(3))
        assert seqs(buf.pop_ready()) == [1]
        assert buf.held == 1
        assert buf.missing_before_release() == [2]

    def test_late_arrival_fills_hole(self, buf, clock):
        buf.insert(packet(1))
        buf.insert(packet(3))
        buf.pop_ready()
        clock.advance(0.01)
        buf.insert(packet(2))
        assert seqs(buf.pop_ready()) == [2, 3]

    def test_hole_skipped_after_max_wait(self, buf, clock):
        buf.insert(packet(1))
        buf.insert(packet(3))
        buf.pop_ready()
        clock.advance(0.1)
        assert seqs(buf.pop_ready()) == [3]
        assert buf.sequences_skipped == 1

    def test_wraparound_order(self, buf):
        buf.insert(packet(0xFFFF))
        buf.insert(packet(0))
        assert seqs(buf.pop_ready()) == [0xFFFF, 0]


class TestEdgeCases:
    def test_duplicate_dropped(self, buf):
        buf.insert(packet(5))
        buf.insert(packet(5))
        assert seqs(buf.pop_ready()) == [5]

    def test_stale_packet_dropped(self, buf, clock):
        buf.insert(packet(10))
        buf.pop_ready()
        buf.insert(packet(9))  # older than release point
        assert buf.pop_ready() == []
        assert buf.packets_dropped_late == 1

    def test_capacity_pressure_skips(self, clock):
        buf = JitterBuffer(now=clock.now, max_wait=10.0, capacity=4)
        buf.insert(packet(1))
        buf.pop_ready()
        for seq in (3, 4, 5, 6):  # hole at 2 never fills
            buf.insert(packet(seq))
        buf.insert(packet(7))  # exceeds capacity: forces a skip
        released = buf.pop_ready()
        assert seqs(released)[0] == 3

    def test_invalid_config(self, clock):
        with pytest.raises(ValueError):
            JitterBuffer(now=clock.now, max_wait=-1)
        with pytest.raises(ValueError):
            JitterBuffer(now=clock.now, capacity=0)


class TestAbandon:
    def test_abandoned_hole_releases_without_wait(self, buf):
        buf.insert(packet(1))
        buf.pop_ready()
        buf.insert(packet(3))  # hole at 2
        assert buf.pop_ready() == []  # still within max_wait
        buf.abandon([2])
        assert seqs(buf.pop_ready()) == [3]
        assert buf.sequences_abandoned == 1
        # Abandoned holes do NOT count as skips — the recovery layer
        # already arranged its own refresh; a skip would double-refresh.
        assert buf.sequences_skipped == 0

    def test_abandoned_packet_arriving_late_is_used(self, buf):
        buf.insert(packet(1))
        buf.pop_ready()
        buf.insert(packet(3))
        buf.abandon([2])
        buf.insert(packet(2))  # the retransmission made it after all
        assert seqs(buf.pop_ready()) == [2, 3]
        assert buf.sequences_abandoned == 0

    def test_abandon_ignores_already_released(self, buf):
        buf.insert(packet(5))
        buf.pop_ready()
        buf.abandon([3, 4])  # behind the release point: no-op
        buf.insert(packet(6))
        assert seqs(buf.pop_ready()) == [6]
        assert buf.sequences_abandoned == 0

    def test_abandon_run_of_holes(self, buf):
        buf.insert(packet(1))
        buf.pop_ready()
        buf.insert(packet(5))
        buf.abandon([2, 3, 4])
        assert seqs(buf.pop_ready()) == [5]
        assert buf.sequences_abandoned == 3

    def test_abandon_before_first_packet_noop(self, buf):
        buf.abandon([1, 2])
        buf.insert(packet(1))
        assert seqs(buf.pop_ready()) == [1]


class TestDrainSkipped:
    def test_timeout_skip_reported(self, buf, clock):
        buf.insert(packet(1))
        buf.pop_ready()
        buf.insert(packet(4))  # holes at 2, 3
        clock.advance(0.06)
        assert seqs(buf.pop_ready()) == [4]
        assert buf.drain_skipped() == [2, 3]
        assert buf.drain_skipped() == []  # drained

    def test_capacity_skip_reported(self, clock):
        buf = JitterBuffer(now=clock.now, max_wait=10.0, capacity=4)
        buf.insert(packet(1))
        buf.pop_ready()
        for seq in (3, 4, 5, 6):
            buf.insert(packet(seq))
        buf.insert(packet(7))  # forces a skip of 2
        buf.pop_ready()
        assert buf.drain_skipped() == [2]

    def test_abandoned_not_in_drain(self, buf):
        buf.insert(packet(1))
        buf.pop_ready()
        buf.insert(packet(3))
        buf.abandon([2])
        buf.pop_ready()
        assert buf.drain_skipped() == []


class TestDuplicateCounter:
    def test_duplicates_counted(self, buf):
        buf.insert(packet(5))
        buf.insert(packet(5))
        buf.insert(packet(5))
        assert buf.duplicates == 2
