"""Tests for RFC 4571 framing over byte streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.framing import FramingError, StreamDeframer, frame, frame_many


class TestFrame:
    def test_prefix(self):
        assert frame(b"abc") == b"\x00\x03abc"

    def test_empty_packet(self):
        assert frame(b"") == b"\x00\x00"

    def test_oversize_rejected(self):
        with pytest.raises(FramingError):
            frame(b"x" * 65_536)

    def test_frame_many(self):
        assert frame_many([b"a", b"bc"]) == b"\x00\x01a\x00\x02bc"


class TestDeframer:
    def test_whole_frames(self):
        deframer = StreamDeframer()
        assert deframer.feed(frame_many([b"one", b"two"])) == [b"one", b"two"]

    def test_byte_at_a_time(self):
        deframer = StreamDeframer()
        stream = frame_many([b"hello", b"world"])
        out = []
        for i in range(len(stream)):
            out.extend(deframer.feed(stream[i : i + 1]))
        assert out == [b"hello", b"world"]
        assert deframer.pending_bytes == 0

    def test_partial_then_complete(self):
        deframer = StreamDeframer()
        data = frame(b"abcdef")
        assert deframer.feed(data[:4]) == []
        assert deframer.pending_bytes == 4
        assert deframer.feed(data[4:]) == [b"abcdef"]

    def test_split_inside_length_prefix(self):
        deframer = StreamDeframer()
        data = frame(b"xyz")
        assert deframer.feed(data[:1]) == []
        assert deframer.feed(data[1:]) == [b"xyz"]

    def test_overflow_protection(self):
        deframer = StreamDeframer(max_buffer=10)
        with pytest.raises(FramingError):
            deframer.feed(b"\xff\xff" + b"x" * 20)

    def test_reset(self):
        deframer = StreamDeframer()
        deframer.feed(b"\x00\x05ab")
        deframer.reset()
        assert deframer.pending_bytes == 0

    @given(st.lists(st.binary(max_size=300), max_size=12), st.integers(1, 17))
    def test_arbitrary_chunking_property(self, packets, chunk_size):
        stream = frame_many(packets)
        deframer = StreamDeframer()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(deframer.feed(stream[i : i + chunk_size]))
        assert out == packets
