"""Tests for periodic RTCP SR/RR generation."""

import random

import pytest

from repro.rtp.clock import SimulatedClock
from repro.rtp.reports import RtcpReporter, middle_32, to_ntp
from repro.rtp.rtcp import (
    ReceiverReport,
    SenderReport,
    SourceDescription,
    decode_compound,
)
from repro.rtp.session import RtpReceiver, RtpSender


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


def make_pair(clock):
    sender = RtpSender(99, now=clock.now, rng=random.Random(1))
    receiver = RtpReceiver(now=clock.now)
    return sender, receiver


class TestNtpConversion:
    def test_to_ntp_monotonic(self):
        assert to_ntp(2.0) > to_ntp(1.0)

    def test_fractional_part(self):
        ntp = to_ntp(1.5)
        assert ntp & 0xFFFF_FFFF == 1 << 31

    def test_middle_32(self):
        ntp = to_ntp(1234.25)
        assert middle_32(ntp) == (ntp >> 16) & 0xFFFF_FFFF


class TestScheduling:
    def test_not_due_immediately(self, clock):
        sender, _ = make_pair(clock)
        reporter = RtcpReporter(clock.now, sender=sender,
                                rng=random.Random(2))
        assert reporter.poll() is None

    def test_due_after_interval(self, clock):
        sender, _ = make_pair(clock)
        reporter = RtcpReporter(clock.now, sender=sender, interval=5.0,
                                rng=random.Random(2))
        clock.advance(10.0)  # beyond max 1.5x interval
        assert reporter.poll() is not None
        assert reporter.poll() is None  # next one rescheduled

    def test_randomised_intervals_differ(self, clock):
        sender, _ = make_pair(clock)
        times = []
        for seed in range(4):
            reporter = RtcpReporter(
                clock.now, sender=sender, rng=random.Random(seed)
            )
            times.append(reporter._next_due)
        assert len(set(times)) > 1

    def test_needs_endpoint(self, clock):
        with pytest.raises(ValueError):
            RtcpReporter(clock.now)


class TestCompoundContents:
    def test_sender_report_when_sending(self, clock):
        sender, _ = make_pair(clock)
        sender.next_packet(b"data")
        reporter = RtcpReporter(clock.now, sender=sender,
                                rng=random.Random(3))
        packets = decode_compound(reporter.build_compound())
        assert isinstance(packets[0], SenderReport)
        assert packets[0].packet_count == 1
        assert packets[0].octet_count == 4
        assert isinstance(packets[1], SourceDescription)

    def test_receiver_report_when_not_sending(self, clock):
        _, receiver = make_pair(clock)
        reporter = RtcpReporter(clock.now, receiver=receiver,
                                rng=random.Random(3))
        packets = decode_compound(reporter.build_compound())
        assert isinstance(packets[0], ReceiverReport)

    def test_report_block_reflects_loss(self, clock):
        remote = RtpSender(99, now=clock.now, rng=random.Random(9))
        _, receiver = make_pair(clock)
        outgoing = [remote.next_packet(b"x") for _ in range(10)]
        for i, packet in enumerate(outgoing):
            if i not in (3, 4):
                receiver.receive(packet)
        reporter = RtcpReporter(clock.now, receiver=receiver,
                                rng=random.Random(3))
        packets = decode_compound(reporter.build_compound())
        block = packets[0].reports[0]
        assert block.cumulative_lost == 2
        assert block.fraction_lost > 0
        assert block.ssrc == remote.ssrc

    def test_interval_fraction_resets(self, clock):
        remote = RtpSender(99, now=clock.now, rng=random.Random(9))
        _, receiver = make_pair(clock)
        for i, packet in enumerate(remote.next_packet(b"x") for _ in range(10)):
            if i != 5:
                receiver.receive(packet)
        reporter = RtcpReporter(clock.now, receiver=receiver,
                                rng=random.Random(3))
        first = decode_compound(reporter.build_compound())[0].reports[0]
        assert first.fraction_lost > 0
        # No new losses in the next interval.
        for packet in (remote.next_packet(b"x") for _ in range(10)):
            receiver.receive(packet)
        second = decode_compound(reporter.build_compound())[0].reports[0]
        assert second.fraction_lost == 0
        assert second.cumulative_lost == 1  # cumulative stays

    def test_lsr_dlsr_round_trip(self, clock):
        remote_sender, receiver = make_pair(clock)
        receiver.receive(remote_sender.next_packet(b"x"))
        reporter = RtcpReporter(clock.now, receiver=receiver,
                                rng=random.Random(4))
        sr = SenderReport(
            ssrc=remote_sender.ssrc,
            ntp_timestamp=to_ntp(clock.now()),
            rtp_timestamp=0,
            packet_count=1,
            octet_count=1,
        )
        reporter.saw_sender_report(sr)
        clock.advance(0.25)
        block = decode_compound(reporter.build_compound())[0].reports[0]
        assert block.last_sr == middle_32(sr.ntp_timestamp)
        assert block.delay_since_last_sr == pytest.approx(
            int(0.25 * 65536), abs=2
        )
