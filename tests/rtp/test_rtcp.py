"""Tests for RTCP packets and compound framing."""

import pytest

from repro.rtp.rtcp import (
    Bye,
    ReceiverReport,
    ReportBlock,
    RtcpError,
    SdesChunk,
    SenderReport,
    SourceDescription,
    decode_compound,
    encode_compound,
)


def block(**kwargs) -> ReportBlock:
    defaults = dict(
        ssrc=42,
        fraction_lost=25,
        cumulative_lost=100,
        extended_highest_seq=70_000,
        jitter=33,
        last_sr=0xAABBCCDD,
        delay_since_last_sr=6553,
    )
    defaults.update(kwargs)
    return ReportBlock(**defaults)


class TestSenderReport:
    def test_roundtrip(self):
        sr = SenderReport(
            ssrc=7,
            ntp_timestamp=0x0123456789ABCDEF,
            rtp_timestamp=90_000,
            packet_count=10,
            octet_count=999,
            reports=(block(),),
        )
        decoded = decode_compound(sr.encode())
        assert decoded == [sr]

    def test_no_reports(self):
        sr = SenderReport(1, 2, 3, 4, 5)
        assert decode_compound(sr.encode()) == [sr]


class TestReceiverReport:
    def test_roundtrip(self):
        rr = ReceiverReport(ssrc=9, reports=(block(), block(ssrc=43)))
        assert decode_compound(rr.encode()) == [rr]

    def test_fraction_lost_bounds(self):
        with pytest.raises(RtcpError):
            block(fraction_lost=300).encode()


class TestSdes:
    def test_roundtrip(self):
        sdes = SourceDescription(
            (SdesChunk(5, ((1, "user@example.com"), (6, "repro"))),)
        )
        assert decode_compound(sdes.encode()) == [sdes]

    def test_item_too_long(self):
        sdes = SourceDescription((SdesChunk(5, ((1, "x" * 300),)),))
        with pytest.raises(RtcpError):
            sdes.encode()


class TestBye:
    def test_roundtrip_with_reason(self):
        bye = Bye((1, 2), "session over")
        assert decode_compound(bye.encode()) == [bye]

    def test_roundtrip_no_reason(self):
        bye = Bye((1,))
        assert decode_compound(bye.encode()) == [bye]


class TestCompound:
    def test_multiple_packets(self):
        rr = ReceiverReport(1)
        bye = Bye((1,), "done")
        data = encode_compound([rr, bye])
        assert decode_compound(data) == [rr, bye]

    def test_word_alignment(self):
        for packet in (
            ReceiverReport(1, (block(),)),
            SenderReport(1, 2, 3, 4, 5),
            SourceDescription((SdesChunk(1, ((1, "abc"),)),)),
            Bye((1,), "x"),
        ):
            assert len(packet.encode()) % 4 == 0

    def test_length_field_matches(self):
        data = ReceiverReport(1, (block(),)).encode()
        length_words = int.from_bytes(data[2:4], "big")
        assert (length_words + 1) * 4 == len(data)

    def test_truncated_rejected(self):
        data = ReceiverReport(1).encode()
        with pytest.raises(RtcpError):
            decode_compound(data[:-2])

    def test_unknown_type_rejected(self):
        data = bytearray(ReceiverReport(1).encode())
        data[1] = 210  # unassigned RTCP PT
        with pytest.raises(RtcpError):
            decode_compound(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(ReceiverReport(1).encode())
        data[0] = 0x00
        with pytest.raises(RtcpError):
            decode_compound(bytes(data))
