"""Tests for RTP packet encode/decode (RFC 3550 header)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtp.packet import RTP_HEADER_LEN, RtpError, RtpPacket


def make(**kwargs) -> RtpPacket:
    defaults = dict(
        payload_type=99,
        sequence_number=1000,
        timestamp=123456,
        ssrc=0xDEADBEEF,
        payload=b"payload",
    )
    defaults.update(kwargs)
    return RtpPacket(**defaults)


class TestEncodeDecode:
    def test_roundtrip(self):
        packet = make(marker=True)
        assert RtpPacket.decode(packet.encode()) == packet

    def test_header_fields_on_wire(self):
        data = make(marker=True).encode()
        assert data[0] >> 6 == 2  # version
        assert data[1] & 0x80  # marker
        assert data[1] & 0x7F == 99  # PT

    def test_header_length(self):
        assert make().header_length == RTP_HEADER_LEN
        assert len(make(payload=b"abc")) == RTP_HEADER_LEN + 3

    def test_csrcs_roundtrip(self):
        packet = make(csrcs=(1, 2, 3))
        decoded = RtpPacket.decode(packet.encode())
        assert decoded.csrcs == (1, 2, 3)
        assert decoded.header_length == RTP_HEADER_LEN + 12

    def test_empty_payload(self):
        packet = make(payload=b"")
        assert RtpPacket.decode(packet.encode()).payload == b""

    @given(
        pt=st.integers(0, 127),
        seq=st.integers(0, 0xFFFF),
        ts=st.integers(0, 0xFFFFFFFF),
        ssrc=st.integers(0, 0xFFFFFFFF),
        payload=st.binary(max_size=200),
        marker=st.booleans(),
    )
    def test_roundtrip_property(self, pt, seq, ts, ssrc, payload, marker):
        packet = RtpPacket(pt, seq, ts, ssrc, payload, marker)
        assert RtpPacket.decode(packet.encode()) == packet


class TestValidation:
    def test_bad_payload_type(self):
        with pytest.raises(RtpError):
            make(payload_type=128)

    def test_bad_sequence(self):
        with pytest.raises(RtpError):
            make(sequence_number=0x1_0000)

    def test_bad_timestamp(self):
        with pytest.raises(RtpError):
            make(timestamp=-1)

    def test_too_many_csrcs(self):
        with pytest.raises(RtpError):
            make(csrcs=tuple(range(16)))


class TestDecodeErrors:
    def test_too_short(self):
        with pytest.raises(RtpError):
            RtpPacket.decode(b"\x80\x00\x00")

    def test_wrong_version(self):
        data = bytearray(make().encode())
        data[0] = 0x40  # version 1
        with pytest.raises(RtpError):
            RtpPacket.decode(bytes(data))

    def test_truncated_csrc(self):
        data = bytearray(make().encode())
        data[0] |= 0x03  # claim 3 CSRCs that are not there
        with pytest.raises(RtpError):
            RtpPacket.decode(bytes(data[:RTP_HEADER_LEN]))

    def test_padding_parsed(self):
        packet = make(payload=b"abcd")
        data = bytearray(packet.encode())
        data[0] |= 0x20  # set padding bit
        data.extend(b"\x00\x00\x03")  # 2 pad bytes + count 3
        decoded = RtpPacket.decode(bytes(data))
        assert decoded.payload == b"abcd"

    def test_invalid_padding_length(self):
        packet = make(payload=b"ab")
        data = bytearray(packet.encode())
        data[0] |= 0x20
        data[-1] = 200  # absurd pad count
        with pytest.raises(RtpError):
            RtpPacket.decode(bytes(data))

    def test_extension_skipped(self):
        base = make(payload=b"xy")
        data = bytearray(base.encode())
        data[0] |= 0x10  # extension bit
        # Insert a 4-byte ext header (profile=0, len=0 words) before payload.
        data = data[:RTP_HEADER_LEN] + bytearray(b"\x00\x00\x00\x00") + data[RTP_HEADER_LEN:]
        decoded = RtpPacket.decode(bytes(data))
        assert decoded.payload == b"xy"
        assert decoded.extension
