"""Tests for RGBA framebuffers."""

import numpy as np
import pytest

from repro.surface.framebuffer import BLACK, WHITE, Framebuffer
from repro.surface.geometry import Rect


class TestConstruction:
    def test_fill_default_black(self):
        fb = Framebuffer(4, 3)
        assert fb.get_pixel(0, 0) == BLACK
        assert (fb.width, fb.height) == (4, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)

    def test_from_array_copies(self):
        src = np.zeros((2, 2, 4), dtype=np.uint8)
        fb = Framebuffer.from_array(src)
        src[0, 0] = 255
        assert fb.get_pixel(0, 0) == (0, 0, 0, 0)

    def test_from_array_bad_shape(self):
        with pytest.raises(ValueError):
            Framebuffer.from_array(np.zeros((2, 2, 3), dtype=np.uint8))

    def test_from_array_bad_dtype(self):
        with pytest.raises(ValueError):
            Framebuffer.from_array(np.zeros((2, 2, 4), dtype=np.float32))


class TestFillAndPixels:
    def test_fill_rect(self):
        fb = Framebuffer(10, 10)
        fb.fill(WHITE, Rect(2, 2, 3, 3))
        assert fb.get_pixel(2, 2) == WHITE
        assert fb.get_pixel(4, 4) == WHITE
        assert fb.get_pixel(5, 5) == BLACK

    def test_fill_clips_to_bounds(self):
        fb = Framebuffer(5, 5)
        fb.fill(WHITE, Rect(3, 3, 100, 100))
        assert fb.get_pixel(4, 4) == WHITE

    def test_put_pixel_out_of_bounds_ignored(self):
        fb = Framebuffer(3, 3)
        fb.put_pixel(99, 99, WHITE)  # no exception


class TestReadWrite:
    def test_roundtrip(self, noise_image):
        fb = Framebuffer(64, 64)
        written = fb.write_rect(5, 7, noise_image)
        assert written == Rect(5, 7, noise_image.shape[1], noise_image.shape[0])
        back = fb.read_rect(written)
        assert np.array_equal(back, noise_image)

    def test_write_clips(self, noise_image):
        fb = Framebuffer(20, 20)
        written = fb.write_rect(10, 10, noise_image)
        assert written == Rect(10, 10, 10, 10)
        assert np.array_equal(fb.read_rect(written), noise_image[:10, :10])

    def test_write_fully_outside(self, noise_image):
        fb = Framebuffer(5, 5)
        assert fb.write_rect(100, 100, noise_image).is_empty()

    def test_write_negative_origin_clips(self, noise_image):
        fb = Framebuffer(50, 50)
        written = fb.write_rect(-5, -3, noise_image)
        assert written == Rect(0, 0, noise_image.shape[1] - 5, noise_image.shape[0] - 3)
        assert np.array_equal(fb.read_rect(written), noise_image[3:, 5:])

    def test_read_outside_is_empty(self):
        fb = Framebuffer(5, 5)
        assert fb.read_rect(Rect(10, 10, 5, 5)).size == 0


class TestCopyRect:
    def test_simple_move(self, noise_image):
        fb = Framebuffer(100, 100)
        fb.write_rect(0, 0, noise_image)
        src = Rect(0, 0, noise_image.shape[1], noise_image.shape[0])
        fb.copy_rect(src, 50, 50)
        moved = fb.read_rect(Rect(50, 50, src.width, src.height))
        assert np.array_equal(moved, noise_image)

    def test_overlapping_move_is_safe(self):
        """Source and destination rectangles may overlap (section 5.2.3)."""
        fb = Framebuffer(10, 40)
        for y in range(40):
            fb.fill((y, y, y, 255), Rect(0, y, 10, 1))
        before = fb.read_rect(Rect(0, 0, 10, 30))
        fb.copy_rect(Rect(0, 0, 10, 30), 0, 5)
        after = fb.read_rect(Rect(0, 5, 10, 30))
        assert np.array_equal(before, after)


class TestScroll:
    def test_scroll_up(self):
        fb = Framebuffer(4, 10)
        for y in range(10):
            fb.fill((y * 10, 0, 0, 255), Rect(0, y, 4, 1))
        fb.scroll(Rect(0, 0, 4, 10), -3)
        # Row 0 now holds what was row 3.
        assert fb.get_pixel(0, 0) == (30, 0, 0, 255)
        assert fb.get_pixel(0, 6) == (90, 0, 0, 255)

    def test_scroll_down(self):
        fb = Framebuffer(4, 10)
        for y in range(10):
            fb.fill((0, y * 10, 0, 255), Rect(0, y, 4, 1))
        fb.scroll(Rect(0, 0, 4, 10), 2)
        assert fb.get_pixel(0, 2) == (0, 0, 0, 255)
        assert fb.get_pixel(0, 9) == (0, 70, 0, 255)

    def test_scroll_entire_height_noop(self):
        fb = Framebuffer(4, 4)
        fb.fill(WHITE)
        fb.scroll(Rect(0, 0, 4, 4), 4)
        assert fb.get_pixel(0, 0) == WHITE


class TestComparison:
    def test_identical(self, noise_image):
        a = Framebuffer.from_array(noise_image)
        b = Framebuffer.from_array(noise_image)
        assert a.identical_to(b)
        b.put_pixel(0, 0, (1, 2, 3, 4))
        assert not a.identical_to(b)

    def test_diff_rect(self, noise_image):
        a = Framebuffer.from_array(noise_image)
        b = a.copy()
        assert not a.diff_rect(b, a.bounds)
        b.put_pixel(5, 5, (9, 9, 9, 9))
        assert a.diff_rect(b, Rect(0, 0, 10, 10))
        assert not a.diff_rect(b, Rect(10, 10, 10, 10))

    def test_mean_abs_error(self):
        a = Framebuffer(2, 2, fill=(10, 10, 10, 255))
        b = Framebuffer(2, 2, fill=(12, 10, 10, 255))
        assert a.mean_abs_error(b) == pytest.approx(0.5)

    def test_mean_abs_error_size_mismatch(self):
        with pytest.raises(ValueError):
            Framebuffer(2, 2).mean_abs_error(Framebuffer(3, 3))
