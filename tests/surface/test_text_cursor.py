"""Tests for the bitmap font and pointer icons."""

import numpy as np
import pytest

from repro.surface.cursor import PointerState, arrow_cursor, ibeam_cursor
from repro.surface.framebuffer import BLACK, Framebuffer, WHITE
from repro.surface.geometry import Rect
from repro.surface.text import char_cell_size, draw_text, glyph_bitmap, render_char


class TestFont:
    def test_known_glyph(self):
        assert glyph_bitmap("A") != glyph_bitmap("B")

    def test_case_folds(self):
        assert glyph_bitmap("a") == glyph_bitmap("A")

    def test_unknown_uses_fallback(self):
        assert glyph_bitmap("é") == glyph_bitmap("€")

    def test_multichar_rejected(self):
        with pytest.raises(ValueError):
            glyph_bitmap("ab")

    def test_render_char_shape(self):
        cell = render_char("X", (0, 0, 0, 255), (255, 255, 255, 255))
        assert cell.shape == (8, 6, 4)

    def test_render_char_scale(self):
        cell = render_char("X", (0, 0, 0, 255), (255, 255, 255, 255), scale=2)
        assert cell.shape == (16, 12, 4)

    def test_render_contains_fg_and_bg(self):
        cell = render_char("X", (1, 2, 3, 255), (9, 8, 7, 255))
        flat = cell.reshape(-1, 4)
        assert (flat == (1, 2, 3, 255)).all(axis=1).any()
        assert (flat == (9, 8, 7, 255)).all(axis=1).any()

    def test_draw_text_returns_painted_rect(self):
        fb = Framebuffer(100, 20, fill=BLACK)
        rect = draw_text(fb, 2, 3, "HI", WHITE, BLACK)
        cell_w, cell_h = char_cell_size()
        assert rect == Rect(2, 3, 2 * cell_w, cell_h)

    def test_draw_text_changes_pixels(self):
        fb = Framebuffer(100, 20, fill=BLACK)
        draw_text(fb, 0, 0, "W", WHITE, BLACK)
        assert (fb.array == 255).any()

    def test_distinct_text_distinct_pixels(self):
        a = Framebuffer(60, 10, fill=BLACK)
        b = Framebuffer(60, 10, fill=BLACK)
        draw_text(a, 0, 0, "AAAA", WHITE, BLACK)
        draw_text(b, 0, 0, "BBBB", WHITE, BLACK)
        assert not a.identical_to(b)


class TestCursors:
    def test_arrow_shape(self):
        img = arrow_cursor()
        assert img.shape[2] == 4
        assert (img[:, :, 3] == 255).any()  # some opaque pixels
        assert (img[:, :, 3] == 0).any()  # some transparent

    def test_ibeam_differs(self):
        assert arrow_cursor().shape != ibeam_cursor().shape or not np.array_equal(
            arrow_cursor(), ibeam_cursor()
        )


class TestPointerState:
    def test_initial_state_dirty(self):
        state = PointerState()
        moved, dirty = state.take_pending()
        assert dirty  # new image must be announced
        assert not moved

    def test_move_flags(self):
        state = PointerState()
        state.take_pending()
        state.move_to(10, 20)
        moved, dirty = state.take_pending()
        assert moved and not dirty
        # No further changes pending.
        assert state.take_pending() == (False, False)

    def test_move_to_same_place_not_flagged(self):
        state = PointerState()
        state.take_pending()
        state.move_to(0, 0)
        assert state.take_pending() == (False, False)

    def test_set_image_flags_dirty(self):
        state = PointerState()
        state.take_pending()
        state.set_image(ibeam_cursor())
        moved, dirty = state.take_pending()
        assert dirty and not moved

    def test_set_bad_image_rejected(self):
        state = PointerState()
        with pytest.raises(ValueError):
            state.set_image(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_paint_onto_composites_opaque_only(self):
        state = PointerState()
        state.move_to(2, 2)
        frame = Framebuffer(40, 40, fill=(7, 7, 7, 255))
        rect = state.paint_onto(frame)
        assert not rect.is_empty()
        # The arrow tip pixel is opaque black.
        assert frame.get_pixel(2, 2) == (0, 0, 0, 255)
        # A transparent pointer pixel leaves the background intact.
        assert frame.get_pixel(11, 2) == (7, 7, 7, 255)

    def test_paint_clips_at_edge(self):
        state = PointerState()
        state.move_to(38, 38)
        frame = Framebuffer(40, 40)
        rect = state.paint_onto(frame)
        assert rect.right <= 40 and rect.bottom <= 40
