"""Stateful property test: WindowManager invariants under any op sequence."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.surface.geometry import Rect
from repro.surface.window import WindowManager

SCREEN_W, SCREEN_H = 800, 600


class WindowManagerMachine(RuleBasedStateMachine):
    """Random create/move/resize/restack/close sequences."""

    def __init__(self):
        super().__init__()
        self.wm = WindowManager(SCREEN_W, SCREEN_H)

    # -- Rules ------------------------------------------------------------

    @rule(
        left=st.integers(0, SCREEN_W - 20),
        top=st.integers(0, SCREEN_H - 20),
        width=st.integers(1, 300),
        height=st.integers(1, 300),
        group=st.integers(0, 255),
    )
    def create(self, left, top, width, height, group):
        if len(self.wm) < 8:
            self.wm.create_window(
                Rect(left, top, width, height), group_id=group
            )

    @precondition(lambda self: len(self.wm) > 0)
    @rule(index=st.integers(0, 7), dx=st.integers(-50, 50),
          dy=st.integers(-50, 50))
    def move(self, index, dx, dy):
        ids = self.wm.window_ids()
        wid = ids[index % len(ids)]
        rect = self.wm.get(wid).rect
        self.wm.move_window(
            wid, max(0, rect.left + dx), max(0, rect.top + dy)
        )

    @precondition(lambda self: len(self.wm) > 0)
    @rule(index=st.integers(0, 7), width=st.integers(1, 300),
          height=st.integers(1, 300))
    def resize(self, index, width, height):
        ids = self.wm.window_ids()
        self.wm.resize_window(ids[index % len(ids)], width, height)

    @precondition(lambda self: len(self.wm) > 0)
    @rule(index=st.integers(0, 7))
    def raise_one(self, index):
        ids = self.wm.window_ids()
        self.wm.raise_window(ids[index % len(ids)])

    @precondition(lambda self: len(self.wm) > 0)
    @rule(index=st.integers(0, 7))
    def lower_one(self, index):
        ids = self.wm.window_ids()
        self.wm.lower_window(ids[index % len(ids)])

    @precondition(lambda self: len(self.wm) > 0)
    @rule(index=st.integers(0, 7))
    def close(self, index):
        ids = self.wm.window_ids()
        self.wm.close_window(ids[index % len(ids)])

    @precondition(lambda self: len(self.wm) > 0)
    @rule()
    def harvest(self):
        self.wm.harvest_damage()

    # -- Invariants ------------------------------------------------------------

    @invariant()
    def ids_unique(self):
        ids = self.wm.window_ids()
        assert len(ids) == len(set(ids))

    @invariant()
    def stack_matches_index(self):
        for wid in self.wm.window_ids():
            assert self.wm.get(wid).window_id == wid

    @invariant()
    def geometry_snapshot_consistent(self):
        geometries = self.wm.geometries()
        assert [g.window_id for g in geometries] == self.wm.window_ids()
        for g in geometries:
            window = self.wm.get(g.window_id)
            assert window.rect == g.rect
            assert window.surface.width == g.rect.width
            assert window.surface.height == g.rect.height

    @invariant()
    def visible_regions_disjoint_and_within(self):
        ids = self.wm.window_ids()
        regions = {wid: self.wm.visible_region(wid) for wid in ids}
        for wid, region in regions.items():
            window = self.wm.get(wid)
            clipped = window.rect.intersection(self.wm.screen)
            # Visible region stays inside the window's on-screen part.
            assert region.intersect_rect(clipped).area == region.area
        # Visible regions of distinct windows never overlap.
        id_list = list(ids)
        for i in range(len(id_list)):
            for j in range(i + 1, len(id_list)):
                inter = regions[id_list[i]].intersect(regions[id_list[j]])
                assert inter.is_empty()

    @invariant()
    def visible_union_is_shared_region(self):
        total = self.wm.shared_region()
        union_area = sum(
            self.wm.visible_region(wid).area for wid in self.wm.window_ids()
        )
        assert union_area == total.area

    @invariant()
    def top_window_fully_visible(self):
        top = self.wm.top_window()
        if top is not None:
            on_screen = top.rect.intersection(self.wm.screen)
            assert self.wm.visible_region(top.window_id).area == on_screen.area


TestWindowManagerStateful = WindowManagerMachine.TestCase
TestWindowManagerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
