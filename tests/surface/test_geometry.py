"""Tests for pixel geometry primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.surface.geometry import EMPTY_RECT, MAX_COORD, Point, Rect, Size

coords = st.integers(min_value=0, max_value=2000)
sizes = st.integers(min_value=0, max_value=1500)


def rects():
    return st.builds(Rect, coords, coords, sizes, sizes)


class TestPoint:
    def test_basic(self):
        p = Point(3, 4)
        assert p.as_tuple() == (3, 4)

    def test_translated(self):
        assert Point(5, 5).translated(-2, 3) == Point(3, 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Point(-1, 0)

    def test_translate_below_zero_rejected(self):
        with pytest.raises(ValueError):
            Point(0, 0).translated(-1, 0)

    def test_out_of_u32_rejected(self):
        with pytest.raises(ValueError):
            Point(MAX_COORD + 1, 0)


class TestSize:
    def test_area(self):
        assert Size(3, 7).area == 21

    def test_empty(self):
        assert Size(0, 10).is_empty()
        assert not Size(1, 1).is_empty()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Size(-1, 1)


class TestRectBasics:
    def test_edges(self):
        r = Rect(10, 20, 30, 40)
        assert (r.right, r.bottom) == (40, 60)
        assert r.area == 1200

    def test_from_points_any_order(self):
        r1 = Rect.from_points(Point(1, 2), Point(5, 9))
        r2 = Rect.from_points(Point(5, 9), Point(1, 2))
        assert r1 == r2 == Rect(1, 2, 4, 7)

    def test_from_edges(self):
        assert Rect.from_edges(1, 2, 5, 9) == Rect(1, 2, 4, 7)

    def test_from_edges_out_of_order(self):
        with pytest.raises(ValueError):
            Rect.from_edges(5, 2, 1, 9)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            Rect(MAX_COORD, 0, 2, 1)


class TestContainment:
    def test_contains_point_half_open(self):
        r = Rect(10, 10, 5, 5)
        assert r.contains_point(10, 10)
        assert r.contains_point(14, 14)
        assert not r.contains_point(15, 10)
        assert not r.contains_point(10, 15)

    def test_contains_rect(self):
        outer = Rect(0, 0, 100, 100)
        assert outer.contains_rect(Rect(10, 10, 10, 10))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(95, 0, 10, 10))

    def test_empty_rect_contained_everywhere(self):
        assert Rect(50, 50, 10, 10).contains_rect(EMPTY_RECT)


class TestIntersection:
    def test_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersection(b) == Rect(5, 5, 5, 5)

    def test_disjoint_is_empty(self):
        assert Rect(0, 0, 5, 5).intersection(Rect(10, 10, 5, 5)).is_empty()

    def test_touching_edges_not_intersecting(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(5, 0, 5, 5)
        assert not a.intersects(b)
        assert a.intersection(b).is_empty()

    @given(rects(), rects())
    def test_intersection_commutative(self, a: Rect, b: Rect):
        assert a.intersection(b) == b.intersection(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a: Rect, b: Rect):
        clip = a.intersection(b)
        if not clip.is_empty():
            assert a.contains_rect(clip)
            assert b.contains_rect(clip)


class TestSubtract:
    def test_hole_in_middle_yields_four(self):
        outer = Rect(0, 0, 100, 100)
        pieces = outer.subtract(Rect(25, 25, 50, 50))
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == 100 * 100 - 50 * 50

    def test_disjoint_returns_self(self):
        r = Rect(0, 0, 10, 10)
        assert r.subtract(Rect(50, 50, 5, 5)) == [r]

    def test_full_cover_returns_nothing(self):
        r = Rect(10, 10, 5, 5)
        assert r.subtract(Rect(0, 0, 100, 100)) == []

    @given(rects(), rects())
    def test_subtract_area_conservation(self, a: Rect, b: Rect):
        pieces = a.subtract(b)
        expected = a.area - a.intersection(b).area
        assert sum(p.area for p in pieces) == expected

    @given(rects(), rects())
    def test_subtract_pieces_disjoint_from_hole(self, a: Rect, b: Rect):
        for piece in a.subtract(b):
            assert not piece.intersects(b)
            assert a.contains_rect(piece)


class TestUnionBounds:
    def test_bounding_box(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(20, 30, 5, 5)
        assert a.union_bounds(b) == Rect(0, 0, 25, 35)

    def test_with_empty(self):
        a = Rect(5, 5, 10, 10)
        assert a.union_bounds(EMPTY_RECT) == a
        assert EMPTY_RECT.union_bounds(a) == a


class TestTiles:
    def test_exact_tiling(self):
        tiles = list(Rect(0, 0, 64, 32).tiles(32))
        assert len(tiles) == 2
        assert all(t.area == 32 * 32 for t in tiles)

    def test_clipped_edge_tiles(self):
        tiles = list(Rect(0, 0, 50, 50).tiles(32))
        assert len(tiles) == 4
        assert sum(t.area for t in tiles) == 2500

    def test_bad_tile_size(self):
        with pytest.raises(ValueError):
            list(Rect(0, 0, 10, 10).tiles(0))

    @given(
        st.builds(
            Rect,
            st.integers(0, 100),
            st.integers(0, 100),
            st.integers(0, 120),
            st.integers(0, 120),
        ),
        st.integers(min_value=4, max_value=64),
    )
    def test_tiles_cover_exactly(self, r: Rect, tile: int):
        tiles = list(r.tiles(tile))
        assert sum(t.area for t in tiles) == r.area
        for t in tiles:
            assert r.contains_rect(t)


class TestTranslation:
    def test_translated(self):
        assert Rect(5, 5, 3, 3).translated(10, -2) == Rect(15, 3, 3, 3)

    def test_clamped_to(self):
        assert Rect(5, 5, 100, 100).clamped_to(Rect(0, 0, 50, 50)) == Rect(
            5, 5, 45, 45
        )
