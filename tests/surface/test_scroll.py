"""Tests for scroll detection."""

import numpy as np
import pytest

from repro.surface.framebuffer import Framebuffer
from repro.surface.geometry import Rect
from repro.surface.scroll import ScrollDetector


def striped(height: int, width: int = 40, phase: int = 0) -> Framebuffer:
    """Rows of distinct colours so shifts are unambiguous."""
    fb = Framebuffer(width, height)
    for y in range(height):
        value = ((y + phase) * 37) % 256
        fb.fill((value, 255 - value, (value * 3) % 256, 255), Rect(0, y, width, 1))
    return fb


class TestScrollDetector:
    def test_detects_upward_scroll(self):
        before = striped(100)
        after = striped(100, phase=8)  # content moved up by 8 rows
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 100))
        assert op is not None
        assert op.dy == -8
        assert op.exposed.height == 8
        assert op.exposed.top == 92  # new content at the bottom

    def test_detects_downward_scroll(self):
        before = striped(100, phase=8)
        after = striped(100, phase=0)
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 100))
        assert op is not None
        assert op.dy == 8
        assert op.exposed.top == 0

    def test_no_scroll_on_random_change(self):
        rng = np.random.default_rng(0)
        before = Framebuffer.from_array(
            rng.integers(0, 256, (100, 40, 4)).astype(np.uint8)
        )
        after = Framebuffer.from_array(
            rng.integers(0, 256, (100, 40, 4)).astype(np.uint8)
        )
        assert ScrollDetector().detect(before, after, Rect(0, 0, 40, 100)) is None

    def test_identical_frames_no_scroll(self):
        frame = striped(64)
        assert ScrollDetector().detect(frame, frame, Rect(0, 0, 40, 64)) is None

    def test_small_area_skipped(self):
        before = striped(10)
        after = striped(10, phase=2)
        detector = ScrollDetector(min_area_rows=16)
        assert detector.detect(before, after, Rect(0, 0, 40, 10)) is None

    def test_scroll_op_geometry_consistent(self):
        before = striped(100)
        after = striped(100, phase=16)
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 100))
        assert op is not None
        # Source + exposed must tile the scrolled area.
        assert op.source.height + op.exposed.height == op.area.height

    def test_applying_op_reconstructs_frame(self):
        """Copying source→dest then repainting exposed == the new frame."""
        before = striped(80)
        after = striped(80, phase=4)
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 80))
        assert op is not None
        recon = before.copy()
        recon.copy_rect(op.source, op.source.left, op.dest_top)
        recon.write_rect(
            op.exposed.left, op.exposed.top, after.read_rect(op.exposed)
        )
        assert recon.identical_to(after)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ScrollDetector(candidate_offsets=())
        with pytest.raises(ValueError):
            ScrollDetector(min_match_fraction=0.0)


class TestMismatchRegion:
    def test_pure_scroll_has_no_mismatch(self):
        before = striped(80)
        after = striped(80, phase=4)
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 80))
        assert op is not None
        assert op.mismatch_region(before, after).is_empty()

    def test_cursor_like_blemish_reported(self):
        """A small unexplained change (a cursor) inside the scrolled
        area must surface as mismatch so it gets repainted — the
        regression behind stale pixels under scroll detection."""
        before = striped(80)
        after = striped(80, phase=4)
        # Paint a small 'cursor' into the new frame mid-area
        # (small enough to stay under the match-fraction tolerance).
        after.fill((255, 255, 0, 255), Rect(10, 30, 2, 2))
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 80))
        assert op is not None
        mismatch = op.mismatch_region(before, after)
        assert not mismatch.is_empty()
        assert mismatch.contains_point(11, 31)

    def test_copy_plus_mismatch_plus_exposed_reconstructs(self):
        before = striped(80)
        after = striped(80, phase=4)
        after.fill((1, 2, 3, 255), Rect(20, 50, 3, 2))
        op = ScrollDetector().detect(before, after, Rect(0, 0, 40, 80))
        assert op is not None
        recon = before.copy()
        recon.copy_rect(op.source, op.source.left, op.dest_top)
        for rect in op.mismatch_region(before, after):
            recon.write_rect(rect.left, rect.top, after.read_rect(rect))
        recon.write_rect(
            op.exposed.left, op.exposed.top, after.read_rect(op.exposed)
        )
        assert recon.identical_to(after)
