"""Tests for the virtual window manager: z-order, groups, damage."""

import pytest

from repro.surface.framebuffer import BLACK, WHITE
from repro.surface.geometry import Rect
from repro.surface.window import (
    NO_GROUP,
    WindowError,
    WindowManager,
    layout_signature,
)


@pytest.fixture
def wm() -> WindowManager:
    return WindowManager(1280, 1024)


class TestLifecycle:
    def test_create_assigns_ids(self, wm):
        a = wm.create_window(Rect(0, 0, 100, 100))
        b = wm.create_window(Rect(10, 10, 50, 50))
        assert a.window_id != b.window_id
        assert len(wm) == 2

    def test_explicit_id(self, wm):
        w = wm.create_window(Rect(0, 0, 10, 10), window_id=42)
        assert w.window_id == 42
        with pytest.raises(WindowError):
            wm.create_window(Rect(0, 0, 10, 10), window_id=42)

    def test_close(self, wm):
        w = wm.create_window(Rect(0, 0, 10, 10))
        wm.close_window(w.window_id)
        assert not wm.has(w.window_id)
        with pytest.raises(WindowError):
            wm.get(w.window_id)

    def test_empty_window_rejected(self, wm):
        with pytest.raises(WindowError):
            wm.create_window(Rect(0, 0, 0, 10))

    def test_new_window_fully_damaged(self, wm):
        w = wm.create_window(Rect(5, 5, 30, 20))
        assert w.peek_damage().area == 600


class TestZOrder:
    def test_new_windows_on_top(self, wm):
        a = wm.create_window(Rect(0, 0, 10, 10))
        b = wm.create_window(Rect(0, 0, 10, 10))
        assert wm.window_ids() == [a.window_id, b.window_id]
        assert wm.top_window() is b

    def test_raise(self, wm):
        a = wm.create_window(Rect(0, 0, 10, 10))
        b = wm.create_window(Rect(0, 0, 10, 10))
        wm.raise_window(a.window_id)
        assert wm.window_ids() == [b.window_id, a.window_id]

    def test_lower(self, wm):
        a = wm.create_window(Rect(0, 0, 10, 10))
        b = wm.create_window(Rect(0, 0, 10, 10))
        wm.lower_window(b.window_id)
        assert wm.window_ids() == [b.window_id, a.window_id]

    def test_window_at_respects_stacking(self, wm):
        a = wm.create_window(Rect(0, 0, 100, 100))
        b = wm.create_window(Rect(50, 50, 100, 100))
        assert wm.window_at(75, 75) is b
        assert wm.window_at(25, 25) is a
        assert wm.window_at(500, 500) is None
        wm.raise_window(a.window_id)
        assert wm.window_at(75, 75) is a


class TestGeometry:
    def test_move_preserves_surface(self, wm):
        w = wm.create_window(Rect(0, 0, 20, 20))
        w.fill(WHITE)
        wm.move_window(w.window_id, 300, 400)
        assert w.rect == Rect(300, 400, 20, 20)
        assert w.surface.get_pixel(5, 5) == WHITE

    def test_resize_keeps_image(self, wm):
        """Participants MUST keep the existing window image (5.2.1) —
        the AH-side store behaves identically."""
        w = wm.create_window(Rect(0, 0, 20, 20))
        w.fill(WHITE)
        wm.resize_window(w.window_id, 30, 10)
        assert w.surface.get_pixel(15, 5) == WHITE or w.surface.get_pixel(
            19, 5
        ) == WHITE
        assert w.surface.get_pixel(25, 5) == BLACK  # fresh area blank

    def test_resize_marks_exposed_damage(self, wm):
        w = wm.create_window(Rect(0, 0, 20, 20))
        w.take_damage()
        wm.resize_window(w.window_id, 30, 20)
        damage = w.take_damage()
        assert damage.area == 10 * 20

    def test_resize_zero_rejected(self, wm):
        w = wm.create_window(Rect(0, 0, 20, 20))
        with pytest.raises(WindowError):
            wm.resize_window(w.window_id, 0, 10)


class TestEvents:
    def test_observer_sequence(self, wm):
        events = []
        wm.add_observer(lambda e: events.append(e.kind))
        w = wm.create_window(Rect(0, 0, 10, 10))
        wm.move_window(w.window_id, 5, 5)
        wm.resize_window(w.window_id, 20, 20)
        wm.raise_window(w.window_id)  # already top: no event
        wm.close_window(w.window_id)
        assert events == ["created", "moved", "resized", "closed"]

    def test_noop_move_no_event(self, wm):
        events = []
        w = wm.create_window(Rect(5, 5, 10, 10))
        wm.add_observer(lambda e: events.append(e.kind))
        wm.move_window(w.window_id, 5, 5)
        assert events == []


class TestVisibility:
    def test_visible_region_fully_exposed(self, wm):
        w = wm.create_window(Rect(10, 10, 100, 100))
        assert wm.visible_region(w.window_id).area == 100 * 100

    def test_visible_region_occluded(self, wm):
        a = wm.create_window(Rect(0, 0, 100, 100))
        wm.create_window(Rect(0, 0, 100, 50))  # covers top half of a
        assert wm.visible_region(a.window_id).area == 100 * 50

    def test_visible_region_clipped_to_screen(self, wm):
        w = wm.create_window(Rect(1230, 0, 100, 50))
        assert wm.visible_region(w.window_id).area == 50 * 50

    def test_shared_region_union(self, wm):
        wm.create_window(Rect(0, 0, 10, 10))
        wm.create_window(Rect(5, 5, 10, 10))
        assert wm.shared_region().area == 175


class TestDamageHarvest:
    def test_only_visible_damage_reported(self, wm):
        a = wm.create_window(Rect(0, 0, 100, 100))
        b = wm.create_window(Rect(0, 0, 100, 50))
        wm.harvest_damage()  # clear initial
        a.fill(WHITE)  # whole window damaged, top half hidden by b
        harvested = wm.harvest_damage()
        assert harvested[a.window_id].area == 100 * 50
        assert b.window_id not in harvested

    def test_harvest_clears(self, wm):
        a = wm.create_window(Rect(0, 0, 10, 10))
        wm.harvest_damage()
        a.fill(WHITE)
        assert wm.harvest_damage()
        assert wm.harvest_damage() == {}


class TestComposite:
    def test_blanks_background(self, wm):
        wm.create_window(Rect(0, 0, 10, 10), fill=WHITE)
        screen = wm.composite()
        assert screen.get_pixel(5, 5) == WHITE  # window content shown
        # Outside any window: blanked (section 2 requirement).
        assert screen.get_pixel(500, 500) == BLACK

    def test_z_order_respected(self, wm):
        a = wm.create_window(Rect(0, 0, 20, 20))
        b = wm.create_window(Rect(10, 10, 20, 20))
        a.fill((255, 0, 0, 255))
        b.fill((0, 255, 0, 255))
        screen = wm.composite()
        assert screen.get_pixel(15, 15) == (0, 255, 0, 255)
        assert screen.get_pixel(5, 5) == (255, 0, 0, 255)


class TestLayoutSignature:
    def test_signature_changes_with_geometry(self, wm):
        w = wm.create_window(Rect(0, 0, 10, 10), group_id=3)
        s1 = layout_signature(wm.geometries())
        wm.move_window(w.window_id, 1, 0)
        assert layout_signature(wm.geometries()) != s1

    def test_group_id_recorded(self, wm):
        w = wm.create_window(Rect(0, 0, 10, 10), group_id=7)
        assert w.group_id == 7
        plain = wm.create_window(Rect(0, 0, 10, 10))
        assert plain.group_id == NO_GROUP
