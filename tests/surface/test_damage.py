"""Tests for tile-based change detection."""

import numpy as np
import pytest

from repro.surface.damage import TileDiffer, shrink_to_changed_rows
from repro.surface.framebuffer import Framebuffer, WHITE
from repro.surface.geometry import Rect


class TestTileDiffer:
    def test_first_frame_full_damage(self):
        differ = TileDiffer(64, 64, tile=16)
        frame = Framebuffer(64, 64)
        damage = differ.diff(frame)
        assert damage.area == 64 * 64

    def test_no_change_no_damage(self):
        differ = TileDiffer(64, 64, tile=16)
        frame = Framebuffer(64, 64)
        differ.diff(frame)
        assert differ.diff(frame).is_empty()

    def test_single_pixel_damages_one_tile(self):
        differ = TileDiffer(64, 64, tile=16)
        frame = Framebuffer(64, 64)
        differ.diff(frame)
        frame.put_pixel(20, 20, WHITE)
        damage = differ.diff(frame)
        assert damage.area == 16 * 16
        assert damage.bounds() == Rect(16, 16, 16, 16)

    def test_changes_in_two_tiles(self):
        differ = TileDiffer(64, 64, tile=16)
        frame = Framebuffer(64, 64)
        differ.diff(frame)
        frame.put_pixel(0, 0, WHITE)
        frame.put_pixel(60, 60, WHITE)
        damage = differ.diff(frame)
        assert damage.area == 2 * 16 * 16

    def test_reset_forces_full(self):
        differ = TileDiffer(32, 32)
        frame = Framebuffer(32, 32)
        differ.diff(frame)
        differ.reset()
        assert differ.diff(frame).area == 32 * 32

    def test_size_mismatch_rejected(self):
        differ = TileDiffer(32, 32)
        with pytest.raises(ValueError):
            differ.diff(Framebuffer(16, 16))

    def test_bad_tile_rejected(self):
        with pytest.raises(ValueError):
            TileDiffer(32, 32, tile=0)

    def test_edge_tiles_clipped(self):
        differ = TileDiffer(50, 50, tile=32)
        frame = Framebuffer(50, 50)
        differ.diff(frame)
        frame.put_pixel(49, 49, WHITE)
        damage = differ.diff(frame)
        assert damage.bounds() == Rect(32, 32, 18, 18)


class TestShrinkToChangedRows:
    def test_tightens_rows(self):
        before = Framebuffer(32, 32)
        after = before.copy()
        after.fill(WHITE, Rect(0, 10, 32, 3))
        tight = shrink_to_changed_rows(before, after, Rect(0, 0, 32, 32))
        assert tight == Rect(0, 10, 32, 3)

    def test_identical_gives_empty(self):
        before = Framebuffer(16, 16)
        after = before.copy()
        assert shrink_to_changed_rows(before, after, Rect(0, 0, 16, 16)).is_empty()

    def test_out_of_bounds_rect(self):
        before = Framebuffer(8, 8)
        after = before.copy()
        assert shrink_to_changed_rows(
            before, after, Rect(100, 100, 5, 5)
        ).is_empty()
