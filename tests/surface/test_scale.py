"""Tests for participant-side view scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surface.scale import downscale, fit_factor, upscale


def flat(h, w, value):
    out = np.empty((h, w, 4), dtype=np.uint8)
    out[:, :] = value
    return out


class TestDownscale:
    def test_factor_one_is_copy(self, noise_image):
        out = downscale(noise_image, 1)
        assert np.array_equal(out, noise_image)
        out[0, 0] = 0  # must be a copy
        assert not np.array_equal(out, noise_image)

    def test_halves_dimensions(self):
        img = flat(40, 60, (100, 150, 200, 255))
        out = downscale(img, 2)
        assert out.shape == (20, 30, 4)
        assert (out == (100, 150, 200, 255)).all()

    def test_box_filter_averages(self):
        img = np.zeros((2, 2, 4), dtype=np.uint8)
        img[0, 0] = (255, 0, 0, 255)
        img[0, 1] = (0, 255, 0, 255)
        img[1, 0] = (0, 0, 255, 255)
        img[1, 1] = (255, 255, 255, 255)
        out = downscale(img, 2)
        assert out.shape == (1, 1, 4)
        assert tuple(out[0, 0][:3]) == (128, 128, 128)

    def test_ragged_edges_cropped(self):
        img = flat(41, 61, (9, 9, 9, 255))
        out = downscale(img, 4)
        assert out.shape == (10, 15, 4)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            downscale(flat(3, 3, (0, 0, 0, 255)), 4)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            downscale(flat(4, 4, (0, 0, 0, 255)), 0)

    @given(st.integers(1, 4), st.integers(8, 32), st.integers(8, 32))
    @settings(max_examples=20)
    def test_shape_property(self, factor, h, w):
        img = flat(h, w, (50, 60, 70, 255))
        out = downscale(img, factor)
        assert out.shape == (h // factor, w // factor, 4)


class TestUpscale:
    def test_doubles(self):
        img = np.arange(16, dtype=np.uint8).reshape(2, 2, 4)
        out = upscale(img, 2)
        assert out.shape == (4, 4, 4)
        assert np.array_equal(out[0, 0], img[0, 0])
        assert np.array_equal(out[1, 1], img[0, 0])
        assert np.array_equal(out[3, 3], img[1, 1])

    def test_roundtrip_with_downscale(self):
        img = flat(8, 8, (40, 80, 120, 255))
        assert np.array_equal(downscale(upscale(img, 3), 3), img)


class TestFitFactor:
    def test_already_fits(self):
        assert fit_factor(640, 480, 1280, 1024) == 1

    def test_exact_halving(self):
        assert fit_factor(1280, 1024, 640, 512) == 2

    def test_asymmetric_constraint(self):
        assert fit_factor(1280, 200, 640, 640) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            fit_factor(0, 10, 10, 10)


class TestParticipantScaledView:
    def test_render_scaled_view(self):
        from repro import quick_session
        from repro.surface import Rect

        ah, participant, clock = quick_session()
        ah.windows.create_window(Rect(0, 0, 400, 300))
        for _ in range(30):
            ah.advance(0.02)
            clock.advance(0.02)
            participant.process_incoming()
        view = participant.render_scaled_view(640, 512)
        assert view.width == 640 and view.height == 512
