"""Tests for the banded region algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surface.geometry import Rect
from repro.surface.region import Region

small_rects = st.builds(
    Rect,
    st.integers(0, 100),
    st.integers(0, 100),
    st.integers(0, 60),
    st.integers(0, 60),
)
rect_lists = st.lists(small_rects, max_size=6)


def brute_force_area(rects: list[Rect]) -> int:
    """Reference union area by pixel marking."""
    cells = set()
    for r in rects:
        for y in range(r.top, r.bottom):
            for x in range(r.left, r.right):
                cells.add((x, y))
    return len(cells)


class TestConstruction:
    def test_empty(self):
        assert Region().is_empty()
        assert Region.empty().area == 0
        assert not Region.empty()

    def test_from_rect(self):
        region = Region.from_rect(Rect(1, 2, 3, 4))
        assert region.area == 12
        assert len(region) == 1

    def test_from_empty_rect(self):
        assert Region.from_rect(Rect(0, 0, 0, 5)).is_empty()

    def test_overlapping_rects_merge(self):
        region = Region([Rect(0, 0, 10, 10), Rect(5, 0, 10, 10)])
        assert region.area == 150

    def test_adjacent_rects_coalesce(self):
        region = Region([Rect(0, 0, 10, 10), Rect(10, 0, 10, 10)])
        assert region.area == 200
        assert len(region) == 1  # same band, touching spans merge

    def test_vertical_coalescing(self):
        region = Region([Rect(0, 0, 10, 5), Rect(0, 5, 10, 5)])
        assert len(region) == 1
        assert region.rects[0] == Rect(0, 0, 10, 10)


class TestEquality:
    def test_construction_order_irrelevant(self):
        a = Region([Rect(0, 0, 5, 5), Rect(10, 10, 5, 5)])
        b = Region([Rect(10, 10, 5, 5), Rect(0, 0, 5, 5)])
        assert a == b
        assert hash(a) == hash(b)

    @given(rect_lists)
    def test_canonical_form(self, rects):
        assert Region(rects) == Region(list(reversed(rects)))


class TestAlgebra:
    def test_union(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        b = Region.from_rect(Rect(20, 20, 10, 10))
        assert a.union(b).area == 200

    def test_intersect(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        b = Region.from_rect(Rect(5, 5, 10, 10))
        assert a.intersect(b).area == 25

    def test_subtract(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        result = a.subtract_rect(Rect(0, 0, 10, 5))
        assert result.area == 50
        assert result.bounds() == Rect(0, 5, 10, 5)

    def test_contains_point(self):
        region = Region([Rect(0, 0, 5, 5), Rect(10, 10, 5, 5)])
        assert region.contains_point(2, 2)
        assert region.contains_point(12, 12)
        assert not region.contains_point(7, 7)

    @given(rect_lists)
    @settings(max_examples=40)
    def test_union_area_matches_brute_force(self, rects):
        assert Region(rects).area == brute_force_area(rects)

    @given(rect_lists, small_rects)
    @settings(max_examples=40)
    def test_subtract_never_contains_hole(self, rects, hole):
        result = Region(rects).subtract_rect(hole)
        for r in result:
            assert not r.intersects(hole)

    @given(rect_lists, small_rects)
    @settings(max_examples=40)
    def test_subtract_union_partition(self, rects, hole):
        """(A - B) and (A ∩ B) partition A."""
        region = Region(rects)
        minus = region.subtract_rect(hole)
        inter = region.intersect_rect(hole)
        assert minus.area + inter.area == region.area

    @given(rect_lists, rect_lists)
    @settings(max_examples=40)
    def test_union_is_commutative(self, a, b):
        assert Region(a).union(Region(b)) == Region(b).union(Region(a))

    @given(rect_lists)
    @settings(max_examples=40)
    def test_rects_are_disjoint(self, rects):
        region = Region(rects)
        rs = region.rects
        for i in range(len(rs)):
            for j in range(i + 1, len(rs)):
                assert not rs[i].intersects(rs[j])


class TestHelpers:
    def test_bounds(self):
        region = Region([Rect(5, 5, 5, 5), Rect(20, 10, 5, 5)])
        assert region.bounds() == Rect(5, 5, 20, 10)

    def test_translated(self):
        region = Region.from_rect(Rect(5, 5, 5, 5)).translated(-5, 10)
        assert region.bounds() == Rect(0, 15, 5, 5)

    def test_simplified_under_cap_unchanged(self):
        region = Region([Rect(0, 0, 5, 5), Rect(10, 10, 5, 5)])
        assert region.simplified(4) is region

    def test_simplified_over_cap_becomes_bounds(self):
        rects = [Rect(i * 20, i * 20, 5, 5) for i in range(5)]
        region = Region(rects)
        simplified = region.simplified(2)
        assert len(simplified) == 1
        assert simplified.bounds() == region.bounds()
