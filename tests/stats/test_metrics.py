"""Tests for metrics helpers."""

import pytest

from repro.stats.metrics import ByteCounter, LatencyRecorder, TrafficStats


class TestLatencyRecorder:
    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.mean() == 0.0
        assert recorder.percentile(95) == 0.0
        assert recorder.max() == 0.0

    def test_mean(self):
        recorder = LatencyRecorder()
        recorder.extend([0.1, 0.2, 0.3])
        assert recorder.mean() == pytest.approx(0.2)

    def test_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend([float(i) for i in range(1, 101)])
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 100.0
        assert recorder.percentile(50) == pytest.approx(50.5)

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(0.42)
        assert recorder.percentile(1) == 0.42
        assert recorder.percentile(99) == 0.42

    def test_interpolation(self):
        recorder = LatencyRecorder()
        recorder.extend([0.0, 1.0])
        assert recorder.percentile(25) == pytest.approx(0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestByteCounter:
    def test_add(self):
        counter = ByteCounter()
        counter.add(100, 112)
        counter.add(50, 62)
        assert counter.packets == 2
        assert counter.payload_bytes == 150
        assert counter.wire_bytes == 174

    def test_merge(self):
        a = ByteCounter(1, 10, 12)
        b = ByteCounter(2, 20, 24)
        a.merge(b)
        assert (a.packets, a.payload_bytes, a.wire_bytes) == (3, 30, 36)


class TestTrafficStats:
    def test_totals(self):
        stats = TrafficStats()
        stats.region_update.add(100, 112)
        stats.hip.add(8, 20)
        stats.rtcp.add(12, 12)
        assert stats.total_wire_bytes() == 144
        assert stats.total_packets() == 3

    def test_zero_initial(self):
        stats = TrafficStats()
        assert stats.total_wire_bytes() == 0
        assert stats.total_packets() == 0
