"""Tests for session trace recording."""

import pytest

from repro.rtp.clock import SimulatedClock
from repro.stats.trace import SessionTrace


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def trace(clock):
    return SessionTrace(clock.now)


class TestRecording:
    def test_event_carries_time_and_attrs(self, clock, trace):
        clock.advance(1.5)
        event = trace.record("update-sent", seq=42, bytes=100)
        assert event.time == 1.5
        assert event.attrs == {"seq": 42, "bytes": 100}
        assert len(trace) == 1

    def test_iteration_in_order(self, clock, trace):
        for i in range(5):
            trace.record("tick", i=i)
            clock.advance(0.1)
        assert [e.attrs["i"] for e in trace] == list(range(5))


class TestQueries:
    def test_filter_by_kind(self, trace):
        trace.record("a")
        trace.record("b")
        trace.record("a")
        assert trace.count("a") == 2
        assert len(trace.events("b")) == 1
        assert len(trace.events()) == 3

    def test_first_last(self, clock, trace):
        trace.record("x", n=1)
        clock.advance(1)
        trace.record("x", n=2)
        assert trace.first("x").attrs["n"] == 1
        assert trace.last("x").attrs["n"] == 2
        assert trace.first("missing") is None

    def test_between(self, clock, trace):
        for _ in range(5):
            trace.record("t")
            clock.advance(1.0)
        assert len(trace.between(1.0, 3.0)) == 2

    def test_span(self, clock, trace):
        trace.record("start")
        clock.advance(2.5)
        trace.record("end")
        assert trace.span("start", "end") == pytest.approx(2.5)
        assert trace.span("start", "missing") is None

    def test_rate_per_second(self, clock, trace):
        # 11 events over a 1.0 s observed window → 11 events/second.
        for _ in range(11):
            trace.record("pkt")
            clock.advance(0.1)
        assert trace.rate_per_second("pkt") == pytest.approx(11.0)

    def test_rate_single_burst_uses_whole_trace_window(self, clock, trace):
        # A burst at one instant inside a longer trace must be rated
        # against the trace's observation span, not the burst's own
        # zero-length first-to-last-of-kind span.
        trace.record("start")
        clock.advance(1.0)
        for _ in range(5):
            trace.record("pkt")
        clock.advance(1.0)
        trace.record("end")
        assert trace.rate_per_second("pkt") == pytest.approx(2.5)

    def test_rate_no_matching_events(self, trace):
        assert trace.rate_per_second("missing") == 0.0

    def test_rate_degenerate(self, trace):
        # A lone event (zero-length window) has no derivable rate.
        trace.record("only-one")
        assert trace.rate_per_second("only-one") == 0.0

    def test_rate_equal_timestamps(self, trace):
        # Every event at one timestamp: window is zero → rate is 0.0 ...
        for _ in range(3):
            trace.record("pkt")
        assert trace.rate_per_second("pkt") == 0.0
        # ... unless the caller supplies an explicit window.
        assert trace.rate_per_second("pkt", window=2.0) == pytest.approx(1.5)

    def test_to_rows(self, clock, trace):
        trace.record("e", value=7)
        rows = trace.to_rows()
        assert rows == [{"time": 0.0, "kind": "e", "value": 7}]
