"""Tests for session trace recording."""

import pytest

from repro.rtp.clock import SimulatedClock
from repro.stats.trace import SessionTrace


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def trace(clock):
    return SessionTrace(clock.now)


class TestRecording:
    def test_event_carries_time_and_attrs(self, clock, trace):
        clock.advance(1.5)
        event = trace.record("update-sent", seq=42, bytes=100)
        assert event.time == 1.5
        assert event.attrs == {"seq": 42, "bytes": 100}
        assert len(trace) == 1

    def test_iteration_in_order(self, clock, trace):
        for i in range(5):
            trace.record("tick", i=i)
            clock.advance(0.1)
        assert [e.attrs["i"] for e in trace] == list(range(5))


class TestQueries:
    def test_filter_by_kind(self, trace):
        trace.record("a")
        trace.record("b")
        trace.record("a")
        assert trace.count("a") == 2
        assert len(trace.events("b")) == 1
        assert len(trace.events()) == 3

    def test_first_last(self, clock, trace):
        trace.record("x", n=1)
        clock.advance(1)
        trace.record("x", n=2)
        assert trace.first("x").attrs["n"] == 1
        assert trace.last("x").attrs["n"] == 2
        assert trace.first("missing") is None

    def test_between(self, clock, trace):
        for _ in range(5):
            trace.record("t")
            clock.advance(1.0)
        assert len(trace.between(1.0, 3.0)) == 2

    def test_span(self, clock, trace):
        trace.record("start")
        clock.advance(2.5)
        trace.record("end")
        assert trace.span("start", "end") == pytest.approx(2.5)
        assert trace.span("start", "missing") is None

    def test_rate_per_second(self, clock, trace):
        for _ in range(11):
            trace.record("pkt")
            clock.advance(0.1)
        assert trace.rate_per_second("pkt") == pytest.approx(10.0)

    def test_rate_degenerate(self, trace):
        trace.record("only-one")
        assert trace.rate_per_second("only-one") == 0.0

    def test_to_rows(self, clock, trace):
        trace.record("e", value=7)
        rows = trace.to_rows()
        assert rows == [{"time": 0.0, "kind": "e", "value": 7}]
