"""Tests for the synthetic workload applications."""

import numpy as np
import pytest

from repro.apps.animation import AnimationApp
from repro.apps.base import AppHost
from repro.apps.photo import synthetic_photo, ui_screenshot
from repro.apps.photo_viewer import PhotoViewerApp
from repro.apps.terminal import TerminalApp
from repro.apps.text_editor import TextEditorApp
from repro.apps.whiteboard import WhiteboardApp
from repro.core import keycodes
from repro.core.hip import BUTTON_LEFT
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


@pytest.fixture
def wm():
    return WindowManager(1280, 1024)


def window(wm, w=400, h=300):
    return wm.create_window(Rect(50, 50, w, h))


class TestTextEditor:
    def test_typing_changes_pixels(self, wm):
        editor = TextEditorApp(window(wm))
        before = editor.window.surface.copy()
        editor.type_text("HELLO")
        assert not editor.window.surface.identical_to(before)
        assert editor.text() == "HELLO"

    def test_typing_produces_damage(self, wm):
        editor = TextEditorApp(window(wm))
        editor.window.take_damage()
        editor.type_text("A")
        assert not editor.window.peek_damage().is_empty()

    def test_newline_and_backspace(self, wm):
        editor = TextEditorApp(window(wm))
        editor.type_text("AB\nC")
        assert editor.text() == "AB\nC"
        editor.type_text("\b\b")  # delete C, then the empty line
        assert editor.text() == "AB"

    def test_line_wrap(self, wm):
        editor = TextEditorApp(window(wm, w=70))  # ~9 columns
        editor.type_text("X" * 25)
        assert len(editor.lines) > 1
        assert "".join(editor.lines) == "X" * 25

    def test_scrolls_when_full(self, wm):
        editor = TextEditorApp(window(wm, h=60))  # few rows
        for i in range(20):
            editor.type_text(f"L{i}\n")
        assert len(editor.lines) <= editor.visible_rows

    def test_key_event_hooks(self, wm):
        editor = TextEditorApp(window(wm))
        editor.on_key_typed("hi")
        editor.on_key_pressed(keycodes.VK_ENTER)
        editor.on_key_pressed(keycodes.VK_A)
        assert editor.text() == "hi\na"
        assert editor.events_handled == 3

    def test_modifiers_ignored(self, wm):
        editor = TextEditorApp(window(wm))
        editor.on_key_pressed(keycodes.VK_SHIFT)
        assert editor.text() == ""


class TestTerminal:
    def test_lines_render(self, wm):
        term = TerminalApp(window(wm))
        before = term.window.surface.copy()
        term.append_line("make all")
        assert not term.window.surface.identical_to(before)

    def test_scrolls_after_viewport_full(self, wm):
        term = TerminalApp(window(wm, h=100))
        rows = term.rows
        snapshots = []
        for i in range(rows + 5):
            term.append_line(f"line {i}")
            snapshots.append(term.window.surface.copy())
        # After filling, each append shifts content (top changes).
        assert not snapshots[-1].identical_to(snapshots[-2])
        assert term.lines_emitted == rows + 5

    def test_build_output_workload(self, wm):
        term = TerminalApp(window(wm))
        term.run_build_output(50)
        assert term.lines_emitted == 50

    def test_long_line_truncated(self, wm):
        term = TerminalApp(window(wm, w=100))
        term.append_line("X" * 500)  # must not crash or overflow


class TestPhotoViewer:
    def test_initial_photo_rendered(self, wm):
        viewer = PhotoViewerApp(window(wm))
        # Window is no longer the uniform fill colour.
        arr = viewer.window.surface.array
        assert len(np.unique(arr[:, :, 0])) > 10

    def test_next_photo_changes_content(self, wm):
        viewer = PhotoViewerApp(window(wm))
        before = viewer.window.surface.copy()
        viewer.next_photo()
        assert not viewer.window.surface.identical_to(before)

    def test_navigation_keys(self, wm):
        viewer = PhotoViewerApp(window(wm))
        viewer.on_key_pressed(keycodes.VK_RIGHT)
        assert viewer.index == 1
        viewer.on_key_pressed(keycodes.VK_LEFT)
        assert viewer.index == 0
        viewer.on_key_pressed(keycodes.VK_LEFT)
        assert viewer.index == 0  # clamped

    def test_wheel_navigation(self, wm):
        viewer = PhotoViewerApp(window(wm))
        viewer.on_mouse_wheel(0, 0, -120)
        assert viewer.index == 1
        viewer.on_mouse_wheel(0, 0, 120)
        assert viewer.index == 0

    def test_deterministic_album(self, wm):
        a = PhotoViewerApp(window(wm), album_seed=5)
        wm2 = WindowManager(1280, 1024)
        b = PhotoViewerApp(
            wm2.create_window(Rect(50, 50, 400, 300)), album_seed=5
        )
        assert a.window.surface.identical_to(b.window.surface)


class TestAnimation:
    def test_renders_at_fps(self, wm):
        anim = AnimationApp(window(wm), fps=30)
        start = anim.frames_rendered
        anim.tick(1.0)
        assert anim.frames_rendered - start == 30

    def test_subframe_tick_accumulates(self, wm):
        anim = AnimationApp(window(wm), fps=10)
        start = anim.frames_rendered
        for _ in range(5):
            anim.tick(0.05)  # 0.25 s total → 2 frames
        assert anim.frames_rendered - start == 2

    def test_frames_differ(self, wm):
        anim = AnimationApp(window(wm), fps=30)
        before = anim.window.surface.copy()
        anim.tick(0.5)
        assert not anim.window.surface.identical_to(before)

    def test_balls_stay_in_bounds(self, wm):
        anim = AnimationApp(window(wm), fps=60, balls=4)
        anim.tick(10.0)
        w, h = anim.window.rect.width, anim.window.rect.height
        for ball in anim._balls:
            assert 0 <= ball.x < w and 0 <= ball.y < h

    def test_bad_fps_rejected(self, wm):
        with pytest.raises(ValueError):
            AnimationApp(window(wm), fps=0)


class TestWhiteboard:
    def test_drag_draws_stroke(self, wm):
        board = WhiteboardApp(window(wm))
        before = board.window.surface.copy()
        board.on_mouse_pressed(10, 10, BUTTON_LEFT)
        board.on_mouse_moved(60, 40)
        board.on_mouse_released(60, 40, BUTTON_LEFT)
        assert not board.window.surface.identical_to(before)
        assert board.strokes_completed == 1
        assert board.points_drawn > 10  # interpolated line

    def test_move_without_press_draws_nothing(self, wm):
        board = WhiteboardApp(window(wm))
        before = board.window.surface.copy()
        board.on_mouse_moved(50, 50)
        assert board.window.surface.identical_to(before)

    def test_right_button_does_not_draw(self, wm):
        board = WhiteboardApp(window(wm))
        before = board.window.surface.copy()
        board.on_mouse_pressed(10, 10, 2)
        board.on_mouse_moved(30, 30)
        assert board.window.surface.identical_to(before)

    def test_clear(self, wm):
        board = WhiteboardApp(window(wm))
        board.on_mouse_pressed(10, 10, BUTTON_LEFT)
        board.on_mouse_released(10, 10, BUTTON_LEFT)
        board.clear()
        fresh = WhiteboardApp(window(WindowManager(1280, 1024)))
        assert board.window.surface.identical_to(fresh.window.surface)


class TestAppHost:
    def test_attach_and_route(self, wm):
        host = AppHost(wm)
        editor = TextEditorApp(window(wm))
        host.attach(editor)
        assert host.app_for(editor.window_id) is editor
        assert host.app_for(9999) is None

    def test_double_attach_rejected(self, wm):
        host = AppHost(wm)
        editor = TextEditorApp(window(wm))
        host.attach(editor)
        with pytest.raises(ValueError):
            host.attach(TextEditorApp(editor.window))

    def test_tick_all(self, wm):
        host = AppHost(wm)
        anim = AnimationApp(window(wm), fps=10)
        host.attach(anim)
        start = anim.frames_rendered
        host.tick_all(1.0)
        assert anim.frames_rendered - start == 10

    def test_detach(self, wm):
        host = AppHost(wm)
        editor = TextEditorApp(window(wm))
        host.attach(editor)
        host.detach(editor.window_id)
        assert host.app_for(editor.window_id) is None


class TestSyntheticImages:
    def test_photo_statistics(self):
        photo = synthetic_photo(100, 100, seed=0)
        assert photo.shape == (100, 100, 4)
        # Many distinct colours (photographic signature).
        packed = (
            photo[:, :, 0].astype(int) * 65536
            + photo[:, :, 1].astype(int) * 256
            + photo[:, :, 2]
        )
        assert len(np.unique(packed)) > 1000

    def test_ui_statistics(self):
        ui = ui_screenshot(100, 100, seed=0)
        packed = (
            ui[:, :, 0].astype(int) * 65536
            + ui[:, :, 1].astype(int) * 256
            + ui[:, :, 2]
        )
        assert len(np.unique(packed)) < 50  # small palette

    def test_deterministic(self):
        assert np.array_equal(
            synthetic_photo(32, 32, seed=9), synthetic_photo(32, 32, seed=9)
        )
        assert not np.array_equal(
            synthetic_photo(32, 32, seed=9), synthetic_photo(32, 32, seed=10)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            synthetic_photo(0, 10)
        with pytest.raises(ValueError):
            ui_screenshot(10, 0)
