"""RelayNode unit behaviour: forwarding, absorption, escalation.

The relay's contract has three faces:

* **media transparency** — downstream sees the upstream bytes
  unmodified (same SSRC, same sequence numbers), duplicates stop at
  the relay;
* **feedback absorption** — NACKs served from the local cache and
  PLI storms never reach the upstream;
* **deduplicated escalation** — a cache miss goes upstream exactly
  once however many viewers ask, and the repair is re-forwarded only
  to the ones who asked.
"""

import pytest

from repro.net.channel import ChannelConfig
from repro.relay import RelayConfig, RelayNode, duplex_transport_pair
from repro.rtp.feedback import GenericNack, PictureLossIndication, nacks_for
from repro.rtp.packet import RtpPacket
from repro.rtp.rtcp import decode_compound
from repro.sharing.config import PT_HIP, PT_REMOTING

MEDIA_SSRC = 0x5350_4A52
VIEWER_SSRC = 0x0BAD_F00D


def media_packet(seq: int, payload: bytes = b"update-bytes") -> bytes:
    return RtpPacket(
        payload_type=PT_REMOTING,
        sequence_number=seq,
        timestamp=1000 + seq * 90,
        ssrc=MEDIA_SSRC,
        payload=payload,
    ).encode()


def decode_rtcp(raw: bytes):
    return decode_compound(raw)


@pytest.fixture
def rig(clock):
    """An upstream handle, the relay, and two downstream handles."""
    upstream_far, relay_up = duplex_transport_pair(
        ChannelConfig(delay=0.0), clock.now
    )
    relay = RelayNode("relay-x", relay_up, clock=clock)
    downstream = {}
    for name in ("a", "b"):
        near, far = duplex_transport_pair(ChannelConfig(delay=0.0), clock.now)
        relay.add_downstream(name, near)
        downstream[name] = far
    return upstream_far, relay, downstream


def pump(clock, relay, dt=0.001):
    clock.advance(dt)
    relay.pump()
    clock.advance(dt)


class TestForwarding:
    def test_media_forwarded_verbatim_to_every_downstream(self, clock, rig):
        upstream, relay, downstream = rig
        raw = media_packet(100)
        upstream.send_packet(raw)
        pump(clock, relay)
        for far in downstream.values():
            got = far.receive_packets()
            assert got == [raw]  # byte-identical: same SSRC, seq, payload
        assert relay.packets_forwarded == 1

    def test_upstream_duplicate_stops_at_the_relay(self, clock, rig):
        upstream, relay, downstream = rig
        raw = media_packet(7)
        upstream.send_packet(raw)
        pump(clock, relay)
        for far in downstream.values():
            far.receive_packets()
        upstream.send_packet(raw)  # network-duplicated copy
        pump(clock, relay)
        for far in downstream.values():
            assert far.receive_packets() == []
        assert relay.duplicates_dropped == 1

    def test_malformed_upstream_dropped_and_counted(self, clock, rig):
        upstream, relay, downstream = rig
        upstream.send_packet(b"\x80")  # truncated: not decodable
        pump(clock, relay)
        assert relay.malformed_dropped == 1
        for far in downstream.values():
            assert far.receive_packets() == []

    def test_hip_from_viewer_flows_upstream_verbatim(self, clock, rig):
        upstream, relay, downstream = rig
        hip = RtpPacket(
            payload_type=PT_HIP, sequence_number=1, timestamp=5,
            ssrc=VIEWER_SSRC, payload=b"keystroke",
        ).encode()
        downstream["a"].send_packet(hip)
        pump(clock, relay)
        assert upstream.receive_packets() == [hip]
        assert relay.hip_forwarded == 1


class TestNackAbsorption:
    def test_cache_hit_served_locally_without_upstream_traffic(
        self, clock, rig
    ):
        upstream, relay, downstream = rig
        raw = media_packet(50)
        upstream.send_packet(raw)
        upstream.send_packet(media_packet(51))
        pump(clock, relay)
        for far in downstream.values():
            far.receive_packets()
        nack = nacks_for(VIEWER_SSRC, MEDIA_SSRC, [50])
        downstream["a"].send_packet(nack.encode())
        pump(clock, relay)
        assert downstream["a"].receive_packets() == [raw]
        assert downstream["b"].receive_packets() == []  # targeted, not fanned
        assert upstream.receive_packets() == []  # fully absorbed
        assert relay.absorbed_nacks == 1
        assert relay.upstream_nacks == 0

    def test_cache_miss_escalates_exactly_once_for_two_viewers(
        self, clock, rig
    ):
        upstream, relay, downstream = rig
        # The relay never saw seq 201 (upstream loss before the relay):
        # anchor its sequence space, then two viewers NACK the hole.
        upstream.send_packet(media_packet(200))
        upstream.send_packet(media_packet(202))
        pump(clock, relay)
        for far in downstream.values():
            far.receive_packets()
        downstream["a"].send_packet(
            nacks_for(VIEWER_SSRC, MEDIA_SSRC, [201]).encode()
        )
        downstream["b"].send_packet(
            nacks_for(VIEWER_SSRC + 1, MEDIA_SSRC, [201]).encode()
        )
        pump(clock, relay)
        nacks = [
            m for raw in upstream.receive_packets()
            for m in decode_rtcp(raw)
            if isinstance(m, GenericNack)
        ]
        seqs = [s for n in nacks for s in n.sequence_numbers()]
        assert seqs.count(201) == 1, "one upstream NACK per missing seq"
        # No duplicate escalation on the next rounds either (retry
        # backoff owns the schedule).
        pump(clock, relay)
        pump(clock, relay)
        assert upstream.receive_packets() == []

    def test_never_forwarded_repair_fans_to_everyone(self, clock, rig):
        upstream, relay, downstream = rig
        upstream.send_packet(media_packet(300))
        upstream.send_packet(media_packet(302))
        pump(clock, relay)
        for far in downstream.values():
            far.receive_packets()
        # Only viewer "a" asks — but nobody ever got 301, so the repair
        # is a first-time forward and every downstream has the hole.
        downstream["a"].send_packet(
            nacks_for(VIEWER_SSRC, MEDIA_SSRC, [301]).encode()
        )
        pump(clock, relay)
        upstream.receive_packets()  # the escalated NACK
        repair = media_packet(301)
        upstream.send_packet(repair)
        pump(clock, relay)
        assert downstream["a"].receive_packets() == [repair]
        assert downstream["b"].receive_packets() == [repair]

    def test_aged_out_repair_re_forwarded_only_to_requesters(self, clock):
        upstream_far, relay_up = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay = RelayNode(
            "relay-aged", relay_up, clock=clock,
            config=RelayConfig(retransmit_cache_packets=2),
        )
        downstream = {}
        for name in ("a", "b"):
            near, far = duplex_transport_pair(
                ChannelConfig(delay=0.0), clock.now
            )
            relay.add_downstream(name, near)
            downstream[name] = far
        # Forward 320, then push it out of the 2-entry cache.
        for seq in (320, 321, 322):
            upstream_far.send_packet(media_packet(seq))
        pump(clock, relay)
        for far in downstream.values():
            far.receive_packets()
        # Viewer "a" lost 320 on its last hop; the cache no longer has
        # it, so the relay fetches it upstream — and on arrival serves
        # only the waiter: "b" already holds 320 and must not see a dup.
        downstream["a"].send_packet(
            nacks_for(VIEWER_SSRC, MEDIA_SSRC, [320]).encode()
        )
        pump(clock, relay)
        upstream_far.receive_packets()  # the escalated NACK
        repair = media_packet(320)
        upstream_far.send_packet(repair)
        pump(clock, relay)
        assert downstream["a"].receive_packets() == [repair]
        assert downstream["b"].receive_packets() == []

    def test_own_gap_nacked_upstream_without_any_viewer_asking(
        self, clock, rig
    ):
        upstream, relay, downstream = rig
        upstream.send_packet(media_packet(400))
        upstream.send_packet(media_packet(402))  # 401 lost upstream
        pump(clock, relay)
        nacks = [
            m for raw in upstream.receive_packets()
            for m in decode_rtcp(raw)
            if isinstance(m, GenericNack)
        ]
        assert [s for n in nacks for s in n.sequence_numbers()] == [401]
        assert nacks[0].sender_ssrc == relay.ssrc
        assert nacks[0].media_ssrc == MEDIA_SSRC


class TestPliValve:
    def test_viewer_pli_storm_collapses_to_one_upstream_pli(
        self, clock, rig
    ):
        upstream, relay, downstream = rig
        upstream.send_packet(media_packet(10))
        pump(clock, relay)
        for _ in range(5):
            for far in downstream.values():
                far.send_packet(
                    PictureLossIndication(VIEWER_SSRC, MEDIA_SSRC).encode()
                )
            pump(clock, relay)
        plis = [
            m for raw in upstream.receive_packets()
            for m in decode_rtcp(raw)
            if isinstance(m, PictureLossIndication)
        ]
        assert len(plis) == 1
        assert relay.plis_received == 10
        assert relay.plis_suppressed == 9

    def test_valve_reopens_after_min_interval(self, clock, rig):
        upstream, relay, downstream = rig
        pli = PictureLossIndication(VIEWER_SSRC, MEDIA_SSRC).encode()
        downstream["a"].send_packet(pli)
        pump(clock, relay)
        clock.advance(relay.config.pli_min_interval)
        downstream["a"].send_packet(pli)
        pump(clock, relay)
        plis = [
            m for raw in upstream.receive_packets()
            for m in decode_rtcp(raw)
            if isinstance(m, PictureLossIndication)
        ]
        assert len(plis) == 2


class TestGiveUp:
    def test_exhausted_retries_degrade_to_upstream_pli(self, clock):
        upstream_far, relay_up = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay = RelayNode(
            "relay-g", relay_up, clock=clock,
            config=RelayConfig(
                nack_retry_interval=0.05, nack_max_attempts=2,
                pli_min_interval=0.0,
            ),
        )
        upstream_far.send_packet(media_packet(500))
        upstream_far.send_packet(media_packet(502))
        pump(clock, relay)
        # Upstream never repairs: retries exhaust into a PLI degrade.
        for _ in range(12):
            clock.advance(0.05)
            relay.pump()
        messages = [
            m for raw in upstream_far.receive_packets()
            for m in decode_rtcp(raw)
        ]
        assert any(isinstance(m, PictureLossIndication) for m in messages)
        assert relay.gave_up == 1
        # The hole is acknowledged: no further NACKs for it.
        relay.pump()
        assert relay.recovery.pending == 0


class TestRateTiers:
    def test_throttled_downstream_queues_and_drains_in_order(self, clock):
        upstream_far, relay_up = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay = RelayNode("relay-t", relay_up, clock=clock)
        near, far = duplex_transport_pair(ChannelConfig(delay=0.0), clock.now)
        # ~3000 B/s with a burst well under two packets' worth.
        tier = relay.add_downstream("slow", near, rate_bps=24_000)
        tier.limiter._tokens = 0.0  # start the bucket empty
        payload = bytes(1400)
        packets = [media_packet(600 + i, payload) for i in range(4)]
        for raw in packets:
            upstream_far.send_packet(raw)
        pump(clock, relay)
        assert len(tier.queue) == 4  # nothing admitted yet
        got = []
        for _ in range(16):
            clock.advance(0.25)
            relay.pump()
            got.extend(far.receive_packets())
        assert got == packets  # FIFO order preserved through the tier

    def test_retransmits_bypass_the_tier(self, clock):
        upstream_far, relay_up = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay = RelayNode("relay-b", relay_up, clock=clock)
        near, far = duplex_transport_pair(ChannelConfig(delay=0.0), clock.now)
        tier = relay.add_downstream("slow", near, rate_bps=24_000)
        raw = media_packet(700, bytes(1400))
        upstream_far.send_packet(raw)
        pump(clock, relay)
        far.receive_packets()
        tier.limiter._tokens = 0.0  # bucket empty: normal sends would queue
        far.send_packet(nacks_for(VIEWER_SSRC, MEDIA_SSRC, [700]).encode())
        pump(clock, relay)
        assert far.receive_packets() == [raw]  # served despite the tier
        assert tier.retransmits_served == 1


class TestTopology:
    def test_duplicate_downstream_id_rejected(self, clock, rig):
        _, relay, _ = rig
        near, _ = duplex_transport_pair(ChannelConfig(delay=0.0), clock.now)
        with pytest.raises(ValueError):
            relay.add_downstream("a", near)

    def test_remove_downstream_clears_waiters(self, clock, rig):
        upstream, relay, downstream = rig
        upstream.send_packet(media_packet(800))
        upstream.send_packet(media_packet(802))
        pump(clock, relay)
        downstream["a"].send_packet(
            nacks_for(VIEWER_SSRC, MEDIA_SSRC, [801]).encode()
        )
        pump(clock, relay)
        relay.remove_downstream("a")
        assert all("a" not in w for w in relay._wanted.values())
        assert relay.downstream_count == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RelayConfig(forward_queue_packets=0)
        with pytest.raises(ValueError):
            RelayConfig(pli_min_interval=-1.0)
        with pytest.raises(ValueError):
            RelayConfig(retransmit_cache_packets=-1)
