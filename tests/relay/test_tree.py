"""Cascaded tree integration: convergence and AH feedback isolation."""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.net.channel import ChannelConfig
from repro.obs import Instrumentation
from repro.relay import build_relay_tree
from repro.sharing.ah import ApplicationHost
from repro.surface.geometry import Rect


def drive(ah, tree, clock, rounds, dt=0.02, edit_at=(), editor=None):
    for i in range(rounds):
        if editor is not None and i in edit_at:
            editor.type_text(f"edit@{i} " * 10)
        ah.advance(dt)
        tree.pump()
        tree.pump_viewers()
        clock.advance(dt)


@pytest.fixture
def shared_ah(clock):
    ah = ApplicationHost(clock=clock)
    win = ah.windows.create_window(Rect(30, 30, 320, 240))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)
    return ah, editor


class TestTreeShape:
    def test_build_counts(self, clock, shared_ah):
        ah, _ = shared_ah
        tree = build_relay_tree(
            ah, clock, fanouts=(2, 3), viewers_per_leaf=2,
        )
        assert len(tree.levels) == 2
        assert len(tree.levels[0]) == 2
        assert len(tree.levels[1]) == 6
        assert len(tree.relays) == 8
        assert len(tree.viewers) == 12
        # The AH sees only the root fan-out, flagged as groups.
        assert len(ah.sessions) == 2
        assert all(s.is_group for s in ah.sessions.values())

    def test_child_relays_hang_off_their_parents(self, clock, shared_ah):
        ah, _ = shared_ah
        tree = build_relay_tree(
            ah, clock, fanouts=(2, 2), viewers_per_leaf=1,
        )
        for parent in tree.levels[0]:
            child_ids = {
                r.id for r in tree.levels[1]
                if r.id in parent.downstreams
            }
            assert len(child_ids) == 2


class TestConvergence:
    def test_two_level_tree_converges_lossless(self, clock, shared_ah):
        ah, editor = shared_ah
        tree = build_relay_tree(
            ah, clock, fanouts=(2, 2), viewers_per_leaf=2,
            channel_config=ChannelConfig(delay=0.005, seed=5),
        )
        drive(ah, tree, clock, 150, edit_at=(40,), editor=editor)
        assert all(v.converged_with(ah.windows) for v in tree.viewers)

    def test_tree_converges_under_loss_on_every_hop(self, clock, shared_ah):
        ah, editor = shared_ah
        tree = build_relay_tree(
            ah, clock, fanouts=(2, 2), viewers_per_leaf=2,
            channel_config=ChannelConfig(delay=0.005, loss_rate=0.05, seed=9),
        )
        drive(
            ah, tree, clock, 500,
            edit_at=(30, 80, 130, 180), editor=editor,
        )
        assert all(v.converged_with(ah.windows) for v in tree.viewers)


class TestFeedbackIsolation:
    def test_ah_sees_only_root_relay_feedback(self, clock):
        obs = Instrumentation(clock=clock)
        ah = ApplicationHost(clock=clock, obs=obs)
        win = ah.windows.create_window(Rect(30, 30, 320, 240))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        tree = build_relay_tree(
            ah, clock, fanouts=(2, 2), viewers_per_leaf=3,
            channel_config=ChannelConfig(delay=0.005, loss_rate=0.05, seed=4),
            obs=obs,
        )
        drive(
            ah, tree, clock, 500,
            edit_at=tuple(range(20, 380, 40)), editor=editor,
        )
        viewer_nacks = sum(
            leaf.nacks_received for leaf in tree.levels[-1]
        )
        root_upstream = sum(r.upstream_nacks for r in tree.levels[0])
        assert viewer_nacks > 0, "loss produced no NACKs; scenario too tame"
        # Absorption: the AH hears only what the roots could not serve.
        assert ah.nacks_received == root_upstream
        assert ah.nacks_received < viewer_nacks
        # And every viewer still converged.
        assert all(v.converged_with(ah.windows) for v in tree.viewers)

    def test_relay_span_stage_recorded(self, clock):
        obs = Instrumentation(clock=clock)
        obs.spans  # tracing on before the session is built
        ah = ApplicationHost(clock=clock, obs=obs)
        win = ah.windows.create_window(Rect(10, 10, 200, 160))
        editor = TextEditorApp(win)
        ah.apps.attach(editor)
        tree = build_relay_tree(
            ah, clock, fanouts=(1,), viewers_per_leaf=1,
            channel_config=ChannelConfig(delay=0.005, seed=2), obs=obs,
        )
        drive(ah, tree, clock, 120, edit_at=(30,), editor=editor)
        assert tree.viewers[0].converged_with(ah.windows)
        completed = [
            s for s in obs.spans.completed if s.outcome == "complete"
        ]
        relayed = [s for s in completed if "relay" in s.stages]
        assert relayed, "no completed span carries the relay stage"
        for span in relayed:
            t0, t1 = span.stages["relay"]
            # The relay hop sits inside the network window.
            assert span.stages["send"][0] <= t0 <= t1
            assert t0 <= span.stages["receive"][1]


class TestFailover:
    LIVE_KW = dict(suspect_after=0.4, dead_after=1.0)

    def _grow_tree(self, clock, ah):
        from repro.health import LivenessConfig
        from repro.relay import RelayConfig

        return build_relay_tree(
            ah, clock, fanouts=(2, 2), viewers_per_leaf=2,
            channel_config=ChannelConfig(delay=0.005, seed=21),
            relay_config=RelayConfig(
                liveness=LivenessConfig(**self.LIVE_KW)
            ),
            rtcp_interval=0.3,  # viewer heartbeat < dead_after
        )

    def test_crashed_parent_reparents_subtree_onto_the_ah(
        self, clock, shared_ah
    ):
        ah, editor = shared_ah
        tree = self._grow_tree(clock, ah)
        victim = tree.levels[0][0]
        orphans = [
            leaf for leaf in tree.leaves
            if tree.parent_of[leaf.id] == victim.id
        ]
        drive(ah, tree, clock, 60, edit_at=(10,), editor=editor)
        assert all(v.converged_with(ah.windows) for v in tree.viewers)

        victim.crash()
        # Silence must cross dead_after before the orphans move.
        drive(ah, tree, clock, 80, editor=editor)
        for leaf in orphans:
            assert tree.parent_of[leaf.id] is None  # grandparent = AH
            assert leaf.failovers == 1
            assert leaf.id in ah.sessions
        moved = {orphan_id for orphan_id, _ in tree.failover_log}
        assert moved == {leaf.id for leaf in orphans}

        # Post-failover edits reach the orphaned subtree's viewers.
        drive(ah, tree, clock, 200, edit_at=(10,), editor=editor)
        assert all(v.converged_with(ah.windows) for v in tree.viewers)

    def test_healthy_subtrees_never_fail_over(self, clock, shared_ah):
        ah, editor = shared_ah
        tree = self._grow_tree(clock, ah)
        drive(ah, tree, clock, 300, edit_at=(10, 120), editor=editor)
        assert tree.failover_log == []
        assert all(r.failovers == 0 for r in tree.relays)
        assert all(v.converged_with(ah.windows) for v in tree.viewers)
