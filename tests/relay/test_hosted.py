"""Hosted relays: first-class SessionServer endpoints."""

import asyncio

import pytest

from repro import SessionServer
from repro.apps.text_editor import TextEditorApp
from repro.relay import HostedRelay
from repro.sharing.server import (
    DuplicateParticipant,
    ServerError,
    SessionClosed,
    UnknownJoinCode,
)
from repro.surface.geometry import Rect


def run(coro):
    return asyncio.run(coro)


async def hosted_editor(server, **host_kwargs):
    code = server.host(close_when_empty=False, **host_kwargs)
    session = server.session(code)
    win = session.ah.windows.create_window(Rect(20, 20, 240, 180))
    editor = TextEditorApp(win)
    session.ah.apps.attach(editor)
    return code, session, editor


class TestHostRelay:
    def test_relay_gets_its_own_code_and_snapshot_row(self):
        async def scenario():
            async with SessionServer() as server:
                code, session, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                assert relay_code != code
                assert relay_code in server.codes()
                assert isinstance(server.relay(relay_code), HostedRelay)
                rows = server.relays()
                assert rows[relay_code]["parent"] == code
                assert rows[relay_code]["state"] == "open"
                # Relay rows never leak into the session snapshot.
                assert relay_code not in server.sessions()
                # The parent AH sees the relay as one group destination.
                assert any(
                    s.is_group for s in session.ah.sessions.values()
                )
        run(scenario())

    def test_relay_chains_under_another_relay(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                r1 = server.host_relay(code)
                r2 = server.host_relay(r1)
                assert server.relays()[r2]["parent"] == r1
                assert server.relay(r1).relay.downstream_count == 1
        run(scenario())

    def test_host_relay_under_unknown_code_raises(self):
        async def scenario():
            async with SessionServer() as server:
                with pytest.raises(UnknownJoinCode):
                    server.host_relay("NOPE99")
        run(scenario())

    def test_relay_lookup_on_session_code_raises(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                with pytest.raises(ServerError):
                    server.relay(code)
        run(scenario())


class TestJoinRelay:
    def test_relayed_and_direct_viewers_converge_together(self):
        async def scenario():
            async with SessionServer() as server:
                code, session, editor = await hosted_editor(server)
                r1 = server.host_relay(code)
                r2 = server.host_relay(r1)
                near = server.join_relay(r1, "near-viewer")
                deep = server.join_relay(r2, "deep-viewer")
                direct = await server.join(code, "direct-viewer")
                editor.type_text("fan-out " * 8)
                await server.until(
                    lambda: near.converged_with(session.ah.windows)
                    and deep.converged_with(session.ah.windows)
                    and direct.participant.converged_with(
                        session.ah.windows
                    ),
                    timeout=15.0,
                )
        run(scenario())

    def test_duplicate_viewer_name_rejected(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                server.join_relay(relay_code, "alice")
                with pytest.raises(DuplicateParticipant):
                    server.join_relay(relay_code, "alice")
        run(scenario())

    def test_leave_relay_is_idempotent_and_updates_counts(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                server.join_relay(relay_code, "alice")
                hosted = server.relay(relay_code)
                assert hosted.participant_count == 1
                server.leave_relay(relay_code, "alice")
                server.leave_relay(relay_code, "alice")  # no-op
                assert hosted.participant_count == 0
                assert hosted.relay.downstream_count == 0
        run(scenario())

    def test_close_when_empty_relay_unregisters_after_last_leave(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code, close_when_empty=True)
                server.join_relay(relay_code, "alice")
                server.leave_relay(relay_code, "alice")
                assert relay_code not in server.codes()
        run(scenario())


class TestTeardown:
    def test_closing_parent_session_cascades_to_relays(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                r1 = server.host_relay(code)
                r2 = server.host_relay(r1)
                server.close_session(code)
                hosted = server.relay(r2)
                await asyncio.wait_for(hosted.closed_event.wait(), 5.0)
                assert r1 not in server.codes()
                assert r2 not in server.codes()
        run(scenario())

    def test_join_after_relay_close_raises(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                server.relay(relay_code).close()
                with pytest.raises(UnknownJoinCode):
                    server.join_relay(relay_code, "late")
        run(scenario())

    def test_server_stop_closes_hosted_relays(self):
        async def scenario():
            server = SessionServer()
            await server.start()
            code, _, _ = await hosted_editor(server)
            relay_code = server.host_relay(code)
            hosted = server.relay(relay_code)
            await server.stop()
            assert hosted.state.value == "closed"
        run(scenario())

    def test_closed_relay_join_method_raises_session_closed(self):
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                hosted = server.relay(relay_code)
                hosted.close()
                with pytest.raises(SessionClosed):
                    hosted.join("late")
        run(scenario())


class TestCloseRaces:
    def test_parent_close_racing_concurrent_join_relay(self):
        """A join_relay racing the parent-session close must either
        land (and then be torn down by the cascade) or raise a clean
        error — never wedge the registry or leak the relay."""
        async def scenario():
            async with SessionServer() as server:
                for close_first in (True, False):
                    code, _, _ = await hosted_editor(server)
                    relay_code = server.host_relay(code)

                    async def closer():
                        if not close_first:
                            await asyncio.sleep(0)
                        server.close_session(code)

                    async def joiner():
                        if close_first:
                            await asyncio.sleep(0)
                        try:
                            server.join_relay(relay_code, "late")
                        except (UnknownJoinCode, SessionClosed):
                            pass

                    await asyncio.gather(closer(), joiner())
                    hosted = None
                    try:
                        hosted = server.relay(relay_code)
                    except UnknownJoinCode:
                        pass
                    if hosted is not None:
                        await asyncio.wait_for(
                            hosted.closed_event.wait(), 5.0
                        )
                    assert code not in server.codes()
                    assert relay_code not in server.codes()
        run(scenario())

    def test_parent_close_racing_viewer_bye(self):
        """leave_relay (the BYE path) racing the cascade stays
        idempotent: whichever side removes the viewer first, both
        finish and the registry ends clean."""
        async def scenario():
            async with SessionServer() as server:
                code, _, _ = await hosted_editor(server)
                relay_code = server.host_relay(code)
                server.join_relay(relay_code, "viewer")

                async def closer():
                    server.close_session(code)

                async def leaver():
                    await asyncio.sleep(0)
                    server.leave_relay(relay_code, "viewer")

                await asyncio.gather(closer(), leaver())
                await server.until(
                    lambda: relay_code not in server.codes(), timeout=10,
                )
                assert server.health()["participants"] == 0
        run(scenario())
