"""Relay failure handling: pruning, quarantine, crash, failover.

The robustness contract layered onto :class:`RelayNode`:

* **pruning** — downstreams are removed when their transport closes
  locally *or* when they fall silent past the liveness thresholds,
  each counted under its own reason;
* **quarantine** — a downstream feeding the relay malformed RTCP is
  ignored (same budget/cooldown policy as every other ingress);
* **crash** — a crashed node stops pumping and closes its transports,
  with no FIN toward peers (UDP semantics);
* **failover** — a dead upstream is detected by silence, and
  :meth:`RelayNode.replace_upstream` / :meth:`RelayTree.failover_orphans`
  re-home the subtree with a full stream reset + PLI resync.
"""

import pytest

from repro.health import LivenessConfig, PeerState
from repro.net.channel import ChannelConfig
from repro.obs import Instrumentation
from repro.relay import RelayConfig, RelayNode, duplex_transport_pair
from repro.rtp.feedback import PictureLossIndication, nacks_for
from repro.rtp.packet import RtpPacket
from repro.rtp.rtcp import decode_compound
from repro.sharing.config import PT_REMOTING

MEDIA_SSRC = 0x5350_4A52
VIEWER_SSRC = 0x0BAD_F00D
LIVE = LivenessConfig(suspect_after=0.5, dead_after=1.5)


def media_packet(seq: int, ssrc: int = MEDIA_SSRC) -> bytes:
    return RtpPacket(
        payload_type=PT_REMOTING,
        sequence_number=seq,
        timestamp=1000 + seq * 90,
        ssrc=ssrc,
        payload=b"update-bytes",
    ).encode()


def make_relay(clock, config=None, obs=None):
    upstream_far, relay_up = duplex_transport_pair(
        ChannelConfig(delay=0.0), clock.now
    )
    relay = RelayNode(
        "relay-h", relay_up, clock=clock, config=config, obs=obs
    )
    return upstream_far, relay


def add_viewer(relay, clock, name, rate_bps=None):
    near, far = duplex_transport_pair(ChannelConfig(delay=0.0), clock.now)
    relay.add_downstream(name, near, rate_bps=rate_bps)
    return near, far


def pump(clock, relay, dt=0.001):
    clock.advance(dt)
    relay.pump()
    clock.advance(dt)


class TestPruning:
    def test_locally_closed_transport_pruned_and_counted(self, clock):
        obs = Instrumentation(clock=clock.now)
        upstream, relay = make_relay(clock, obs=obs)
        near, _far = add_viewer(relay, clock, "a")
        near.close()
        pump(clock, relay)
        assert "a" not in relay.downstreams
        assert relay.downstreams_pruned == 1
        counter = obs.registry.get(
            "relay.downstream_pruned",
            peer="relay-h", side="relay", reason="closed",
        )
        assert counter.value == 1

    def test_silent_downstream_pruned_as_dead(self, clock):
        obs = Instrumentation(clock=clock.now)
        upstream, relay = make_relay(
            clock, config=RelayConfig(liveness=LIVE), obs=obs
        )
        add_viewer(relay, clock, "quiet")
        clock.advance(LIVE.dead_after)
        relay.pump()
        assert "quiet" not in relay.downstreams
        counter = obs.registry.get(
            "relay.downstream_pruned",
            peer="relay-h", side="relay", reason="dead",
        )
        assert counter.value == 1

    def test_chatty_downstream_stays(self, clock):
        upstream, relay = make_relay(clock, config=RelayConfig(liveness=LIVE))
        _near, far = add_viewer(relay, clock, "chatty")
        for _ in range(4):
            far.send_packet(
                PictureLossIndication(VIEWER_SSRC, MEDIA_SSRC).encode()
            )
            clock.advance(LIVE.dead_after / 2)
            relay.pump()
        assert "chatty" in relay.downstreams
        assert relay.downstreams_pruned == 0

    def test_no_liveness_config_means_no_silence_pruning(self, clock):
        upstream, relay = make_relay(clock)
        add_viewer(relay, clock, "quiet")
        clock.advance(3600.0)
        relay.pump()
        assert "quiet" in relay.downstreams


class TestQuarantine:
    def test_malformed_rtcp_flood_quarantines_the_downstream(self, clock):
        upstream, relay = make_relay(
            clock,
            config=RelayConfig(rejection_budget=3, rejection_window=10.0),
        )
        _near, far = add_viewer(relay, clock, "hostile")
        # RTCP by the mux rule (PT in 192..223) but truncated garbage.
        for _ in range(4):
            far.send_packet(b"\x80\xc8\x00")
            pump(clock, relay)
        assert relay.quarantine.is_quarantined("hostile")
        assert "hostile" in relay.snapshot()["quarantined"]

    def test_quarantined_feedback_is_ignored_but_proves_liveness(self, clock):
        upstream, relay = make_relay(
            clock,
            config=RelayConfig(
                rejection_budget=1, rejection_window=10.0, liveness=LIVE
            ),
        )
        upstream.send_packet(media_packet(10))
        _near, far = add_viewer(relay, clock, "hostile")
        pump(clock, relay)
        far.receive_packets()  # drain the forwarded copy
        for _ in range(2):
            far.send_packet(b"\x80\xc8\x00")
            pump(clock, relay)
        assert relay.quarantine.is_quarantined("hostile")
        # A NACK that would normally be served from cache is ignored.
        nack = nacks_for(VIEWER_SSRC, MEDIA_SSRC, [10])
        far.send_packet(nack.encode())
        pump(clock, relay)
        media = [
            raw for raw in far.receive_packets()
            if raw[:2] != b"\x80\xc8" and len(raw) > 12
        ]
        assert media == []
        # ...but the chatter still counts as liveness: no dead-prune.
        assert relay.downstream_liveness.state_of("hostile") \
            is PeerState.ALIVE


class TestOverloadScaling:
    def test_scale_halves_and_restores_tiered_limiters(self, clock):
        upstream, relay = make_relay(clock)
        add_viewer(relay, clock, "tiered", rate_bps=100_000)
        add_viewer(relay, clock, "unmetered")
        relay.scale_rate_tiers(0.5)
        assert relay.downstreams["tiered"].limiter.rate_bps == 50_000
        assert relay.downstreams["unmetered"].limiter is None
        # Non-compounding: scaling again recomputes from the base tier.
        relay.scale_rate_tiers(0.5)
        assert relay.downstreams["tiered"].limiter.rate_bps == 50_000
        relay.scale_rate_tiers(1.0)
        assert relay.downstreams["tiered"].limiter.rate_bps == 100_000

    def test_downstream_added_while_degraded_gets_scaled_tier(self, clock):
        upstream, relay = make_relay(clock)
        relay.scale_rate_tiers(0.25)
        add_viewer(relay, clock, "late", rate_bps=80_000)
        assert relay.downstreams["late"].limiter.rate_bps == 20_000

    def test_invalid_factor_rejected(self, clock):
        upstream, relay = make_relay(clock)
        with pytest.raises(ValueError):
            relay.scale_rate_tiers(0.0)


class TestCrash:
    def test_crashed_relay_goes_silent_and_closes_its_transports(
        self, clock
    ):
        upstream, relay = make_relay(clock)
        near, far = add_viewer(relay, clock, "a")
        relay.crash()
        assert relay.crashed
        assert relay.snapshot()["crashed"] is True
        upstream.send_packet(media_packet(1))
        assert relay.pump() == 0
        clock.advance(1.0)
        assert far.receive_packets() == []
        # UDP has no FIN: the viewer's own transport object stays open.
        assert not far.closed


class TestUpstreamLiveness:
    def test_silent_upstream_flagged_dead(self, clock):
        obs = Instrumentation(clock=clock.now)
        upstream, relay = make_relay(
            clock, config=RelayConfig(liveness=LIVE), obs=obs
        )
        assert not relay.upstream_dead
        clock.advance(LIVE.dead_after)
        relay.pump()
        assert relay.upstream_dead
        assert relay.snapshot()["upstream_dead"] is True
        assert obs.registry.get(
            "health.upstream_dead", peer="relay-h", side="relay"
        ).value == 1

    def test_media_keeps_upstream_alive(self, clock):
        upstream, relay = make_relay(clock, config=RelayConfig(liveness=LIVE))
        for _ in range(4):
            upstream.send_packet(media_packet(1))
            clock.advance(LIVE.dead_after / 2)
            relay.pump()
        assert not relay.upstream_dead


class TestReplaceUpstream:
    def test_new_parent_means_full_stream_reset(self, clock):
        upstream, relay = make_relay(clock, config=RelayConfig(liveness=LIVE))
        _near, far = add_viewer(relay, clock, "v")
        upstream.send_packet(media_packet(20))
        pump(clock, relay)
        far.receive_packets()
        assert relay.receiver.packets_received == 1

        new_far, new_relay_side = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay.replace_upstream(new_relay_side)
        assert relay.failovers == 1
        assert relay.snapshot()["failovers"] == 1
        # Old stream state is gone: counters reset, cache not serving.
        assert relay.receiver.packets_received == 0
        assert not relay.upstream_dead
        # The resync PLI went out the new path immediately.
        plis = [
            m for raw in new_far.receive_packets()
            for m in decode_compound(raw)
            if isinstance(m, PictureLossIndication)
        ]
        assert len(plis) == 1

    def test_stale_cache_never_serves_the_new_stream(self, clock):
        upstream, relay = make_relay(clock)
        _near, far = add_viewer(relay, clock, "v")
        upstream.send_packet(media_packet(30, ssrc=0x1111))
        pump(clock, relay)
        far.receive_packets()

        new_far, new_relay_side = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay.replace_upstream(new_relay_side)
        # A NACK for seq 30 on the *new* stream must not be answered
        # with the old stream's bytes (same 16-bit seq, different SSRC).
        nack = nacks_for(VIEWER_SSRC, 0x2222, [30])
        far.send_packet(nack.encode())
        pump(clock, relay)
        assert all(
            raw[1] in range(192, 224) for raw in far.receive_packets()
        )

    def test_forwarding_resumes_through_the_new_parent(self, clock):
        upstream, relay = make_relay(clock, config=RelayConfig(liveness=LIVE))
        _near, far = add_viewer(relay, clock, "v")
        new_far, new_relay_side = duplex_transport_pair(
            ChannelConfig(delay=0.0), clock.now
        )
        relay.replace_upstream(new_relay_side)
        new_far.send_packet(media_packet(5, ssrc=0x2222))
        pump(clock, relay)
        media = [
            RtpPacket.decode(raw) for raw in far.receive_packets()
            if raw[1] not in range(192, 224)
        ]
        assert [p.sequence_number for p in media] == [5]
        assert media[0].ssrc == 0x2222
