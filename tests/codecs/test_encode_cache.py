"""Content-addressed encode cache: LRU semantics + encoder integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.base import default_registry
from repro.codecs.cache import EncodeCache
from repro.obs.instrumentation import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.rtp.session import RtpSender
from repro.sharing.ah import ApplicationHost
from repro.sharing.capture import UpdateOp
from repro.sharing.config import PT_REMOTING, SharingConfig
from repro.sharing.encoder import FrameEncoder
from repro.sharing.transport import PacketTransport


class NullTransport(PacketTransport):
    """Accepts and discards every packet."""

    reliable = False

    def send_packet(self, packet: bytes) -> bool:
        return True

    def receive_packets(self) -> list[bytes]:
        return []


def _pixels(seed: int, shape=(16, 16, 4)) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 256, size=shape, dtype=np.uint8
    )


class TestEncodeCache:
    def test_key_depends_on_content_and_shape(self):
        a = _pixels(1)
        assert EncodeCache.key(a) == EncodeCache.key(a.copy())
        assert EncodeCache.key(a) != EncodeCache.key(_pixels(2))
        # Same bytes, different geometry: different encodes.
        flat = a.reshape(8, 32, 4)
        assert EncodeCache.key(a) != EncodeCache.key(flat)

    def test_get_put_and_counters(self):
        cache = EncodeCache(max_entries=4)
        key = EncodeCache.key(_pixels(3))
        assert cache.get(key) is None
        cache.put(key, 96, b"data")
        assert cache.get(key) == (96, b"data")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = EncodeCache(max_entries=2)
        k1, k2, k3 = (
            EncodeCache.key(_pixels(s)) for s in (10, 11, 12)
        )
        cache.put(k1, 1, b"one")
        cache.put(k2, 2, b"two")
        assert cache.get(k1) is not None  # touch k1: k2 is now LRU
        cache.put(k3, 3, b"three")
        assert cache.get(k2) is None  # evicted
        assert cache.get(k1) is not None
        assert cache.get(k3) is not None
        assert len(cache) == 2

    def test_zero_entries_disables(self):
        cache = EncodeCache(max_entries=0)
        key = EncodeCache.key(_pixels(4))
        cache.put(key, 1, b"x")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            EncodeCache(max_entries=-1)

    def test_key_depends_on_params(self):
        a = _pixels(1)
        assert EncodeCache.key(a, b"png:6") == EncodeCache.key(a, b"png:6")
        assert EncodeCache.key(a, b"png:6") != EncodeCache.key(a, b"png:9")
        assert EncodeCache.key(a) != EncodeCache.key(a, b"png:6")

    def test_key_of_view_matches_contiguous_copy(self):
        frame = _pixels(5, shape=(64, 64, 4))
        view = frame[8:40, 16:48]  # a damage rect: non-contiguous
        assert not view.flags.c_contiguous
        assert EncodeCache.key(view) == EncodeCache.key(view.copy())

    def test_key_handles_sliced_channels(self):
        # Rows themselves non-contiguous: the bounded-workspace path.
        frame = _pixels(6, shape=(32, 32, 4))
        view = frame[:, ::2]
        assert not view[0].flags.c_contiguous
        assert EncodeCache.key(view) == EncodeCache.key(
            np.ascontiguousarray(view)
        )

    def test_key_never_copies_the_frame(self):
        """Hit-path lookups must not materialise a full-frame copy."""
        import tracemalloc

        frame = _pixels(7, shape=(512, 512, 4))  # 1 MiB
        view = frame[1:509, 3:500]  # non-contiguous damage rect
        EncodeCache.key(frame)  # warm hashlib/workspace allocations
        EncodeCache.key(view)
        tracemalloc.start()
        EncodeCache.key(frame)
        EncodeCache.key(view)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < view[0].nbytes * 8  # a few rows, not a frame


def _encoder(cache, obs=None):
    clock = SimulatedClock()
    sender = RtpSender(PT_REMOTING, now=clock.now)
    return FrameEncoder(
        sender, default_registry(), SharingConfig(), clock.now,
        instrumentation=obs, cache=cache,
    )


class TestFrameEncoderCaching:
    def test_repeat_update_hits_cache(self):
        cache = EncodeCache()
        encoder = _encoder(cache)
        pixels = _pixels(20)
        update = UpdateOp(1, 0, 0, pixels)
        first = encoder.encode_update(update, 0.0)
        second = encoder.encode_update(update, 1.0)
        assert cache.hits == 1
        assert cache.misses == 1
        # Cached payload is byte-identical: same fragments modulo
        # sequence numbers/timestamps.
        assert [p.packet.payload for p in first] == [
            p.packet.payload for p in second
        ]

    def test_cache_shared_across_encoders(self):
        cache = EncodeCache()
        enc_a = _encoder(cache)
        enc_b = _encoder(cache)
        pixels = _pixels(21)
        enc_a.encode_update(UpdateOp(1, 0, 0, pixels), 0.0)
        enc_b.encode_update(UpdateOp(1, 0, 0, pixels), 0.0)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_misses_flat_as_destinations_scale(self):
        """N destinations collapse to exactly one encode per block."""
        cache = EncodeCache()
        encoders = [_encoder(cache) for _ in range(8)]
        pixels = _pixels(25)
        for encoder in encoders:
            encoder.encode_update(UpdateOp(1, 0, 0, pixels), 0.0)
        assert cache.misses == 1
        assert cache.hits == 7

    def test_different_codec_params_do_not_share_entries(self):
        from repro.codecs.base import CodecRegistry
        from repro.codecs.lossy import LossyDctCodec
        from repro.codecs.png import PngCodec

        cache = EncodeCache()
        clock = SimulatedClock()
        encoders = []
        for level in (1, 9):
            registry = CodecRegistry()
            registry.register(PngCodec(compression_level=level))
            registry.register(LossyDctCodec())
            encoders.append(
                FrameEncoder(
                    RtpSender(PT_REMOTING, now=clock.now), registry,
                    SharingConfig(), clock.now, cache=cache,
                )
            )
        pixels = _pixels(26)
        for encoder in encoders:
            encoder.encode_update(UpdateOp(1, 0, 0, pixels), 0.0)
        # Same pixels, different compression level: distinct entries.
        assert cache.misses == 2
        assert cache.hits == 0

    def test_no_cache_still_encodes(self):
        encoder = _encoder(None)
        packets = encoder.encode_update(UpdateOp(1, 0, 0, _pixels(22)), 0.0)
        assert packets

    def test_hit_miss_instrumentation_counters(self):
        obs = Instrumentation()
        cache = EncodeCache()
        encoder = _encoder(cache, obs=obs)
        pixels = _pixels(23)
        encoder.encode_update(UpdateOp(1, 0, 0, pixels), 0.0)
        encoder.encode_update(UpdateOp(1, 0, 0, pixels), 1.0)
        encoder.encode_update(UpdateOp(1, 0, 0, _pixels(24)), 2.0)
        assert obs.registry.total("encoder.cache_hit") == 1
        assert obs.registry.total("encoder.cache_miss") == 2


class TestApplicationHostSharedCache:
    def test_host_shares_one_cache_across_destinations(self):
        clock = SimulatedClock()
        ah = ApplicationHost(640, 480, clock=clock.now)
        assert ah.encode_cache is not None
        s1 = ah.add_participant("p1", NullTransport())
        s2 = ah.add_participant("p2", NullTransport())
        assert s1.scheduler.encoder.cache is ah.encode_cache
        assert s2.scheduler.encoder.cache is ah.encode_cache

    def test_cache_disabled_by_config(self):
        ah = ApplicationHost(
            640, 480, config=SharingConfig(encode_cache_entries=0),
            clock=SimulatedClock().now,
        )
        assert ah.encode_cache is None
