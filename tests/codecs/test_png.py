"""Tests for the from-scratch PNG codec."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.base import CodecError
from repro.codecs.png import (
    ALL_FILTERS,
    FILTER_PAETH,
    FILTER_SUB,
    FILTER_UP,
    PngCodec,
    PngFormatError,
    apply_filter,
    choose_filter,
    decode_png,
    encode_png,
    undo_filter,
)
from repro.codecs.png.chunks import SIGNATURE, Chunk, ImageHeader, iter_chunks


def random_image(h: int, w: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4)).astype(np.uint8)


class TestFilters:
    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_apply_undo_roundtrip(self, filter_type):
        rng = np.random.default_rng(filter_type)
        row = rng.integers(0, 256, 40).astype(np.uint8)
        prev = rng.integers(0, 256, 40).astype(np.uint8)
        filtered = apply_filter(filter_type, row, prev)
        assert np.array_equal(undo_filter(filter_type, filtered, prev), row)

    def test_sub_on_constant_row_is_sparse(self):
        row = np.full(40, 123, dtype=np.uint8)
        prev = np.zeros(40, dtype=np.uint8)
        filtered = apply_filter(FILTER_SUB, row, prev)
        assert (filtered[4:] == 0).all()

    def test_up_on_identical_rows_is_zero(self):
        row = np.arange(40, dtype=np.uint8)
        filtered = apply_filter(FILTER_UP, row, row)
        assert (filtered == 0).all()

    def test_choose_filter_picks_valid(self):
        rng = np.random.default_rng(5)
        row = rng.integers(0, 256, 32).astype(np.uint8)
        prev = rng.integers(0, 256, 32).astype(np.uint8)
        filter_type, filtered = choose_filter(row, prev)
        assert filter_type in ALL_FILTERS
        assert np.array_equal(undo_filter(filter_type, filtered, prev), row)

    def test_unknown_filter_rejected(self):
        row = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ValueError):
            apply_filter(9, row, row)
        with pytest.raises(ValueError):
            undo_filter(9, row, row)


class TestChunks:
    def test_chunk_encode_crc(self):
        chunk = Chunk(b"IDAT", b"hello")
        data = chunk.encode()
        assert data[4:8] == b"IDAT"
        stored_crc = int.from_bytes(data[-4:], "big")
        assert stored_crc == zlib.crc32(b"IDAThello")

    def test_iter_chunks_roundtrip(self):
        stream = SIGNATURE + Chunk(b"IHDR", ImageHeader(2, 2).encode()).encode()
        stream += Chunk(b"IEND", b"").encode()
        chunks = list(iter_chunks(stream))
        assert [c.type for c in chunks] == [b"IHDR", b"IEND"]

    def test_bad_signature(self):
        with pytest.raises(PngFormatError):
            list(iter_chunks(b"not a png"))

    def test_crc_mismatch(self):
        stream = bytearray(
            SIGNATURE
            + Chunk(b"IHDR", ImageHeader(2, 2).encode()).encode()
            + Chunk(b"IEND", b"").encode()
        )
        stream[20] ^= 0xFF  # corrupt IHDR body
        with pytest.raises(PngFormatError):
            list(iter_chunks(bytes(stream)))

    def test_missing_iend(self):
        stream = SIGNATURE + Chunk(b"IHDR", ImageHeader(2, 2).encode()).encode()
        with pytest.raises(PngFormatError):
            list(iter_chunks(stream))


class TestEncodeDecode:
    def test_roundtrip_noise(self):
        img = random_image(33, 47)
        assert np.array_equal(decode_png(encode_png(img)), img)

    def test_roundtrip_flat(self, flat_image):
        assert np.array_equal(decode_png(encode_png(flat_image)), flat_image)

    def test_roundtrip_1x1(self):
        img = np.array([[[1, 2, 3, 4]]], dtype=np.uint8)
        assert np.array_equal(decode_png(encode_png(img)), img)

    def test_fixed_filter_modes(self):
        img = random_image(16, 16, seed=2)
        for filter_type in ALL_FILTERS:
            data = encode_png(img, adaptive_filter=False, fixed_filter=filter_type)
            assert np.array_equal(decode_png(data), img)

    def test_flat_compresses_well(self, flat_image):
        data = encode_png(flat_image)
        assert len(data) < flat_image.nbytes / 20

    def test_idat_chunking(self):
        img = random_image(64, 64, seed=3)
        data = encode_png(img, idat_chunk_size=512)
        idats = [c for c in iter_chunks(data) if c.type == b"IDAT"]
        assert len(idats) > 1
        assert np.array_equal(decode_png(data), img)

    def test_empty_rejected(self):
        with pytest.raises(PngFormatError):
            encode_png(np.zeros((0, 4, 4), dtype=np.uint8))

    def test_wrong_shape_rejected(self):
        with pytest.raises(PngFormatError):
            encode_png(np.zeros((4, 4, 3), dtype=np.uint8))

    @given(
        h=st.integers(1, 24),
        w=st.integers(1, 24),
        seed=st.integers(0, 100),
        level=st.integers(0, 9),
    )
    @settings(max_examples=25)
    def test_roundtrip_property(self, h, w, seed, level):
        img = random_image(h, w, seed)
        assert np.array_equal(
            decode_png(encode_png(img, compression_level=level)), img
        )


class TestDecodeErrors:
    def test_truncated_idat(self):
        img = random_image(8, 8)
        data = bytearray(encode_png(img))
        # Corrupt IDAT body (recompute nothing: CRC check fires first).
        with pytest.raises(PngFormatError):
            offset = data.find(b"IDAT") + 6
            data[offset] ^= 0xFF
            decode_png(bytes(data))

    def test_unsupported_color_type(self):
        header = ImageHeader(4, 4, bit_depth=8, color_type=2)  # RGB
        stream = SIGNATURE + Chunk(b"IHDR", header.encode()).encode()
        stream += Chunk(b"IDAT", zlib.compress(b"\x00" * (4 * 12 + 4))).encode()
        stream += Chunk(b"IEND", b"").encode()
        with pytest.raises(PngFormatError):
            decode_png(stream)

    def test_no_ihdr(self):
        stream = SIGNATURE + Chunk(b"IEND", b"").encode()
        with pytest.raises(PngFormatError):
            decode_png(stream)

    def test_wrong_decompressed_size(self):
        header = ImageHeader(4, 4)
        stream = SIGNATURE + Chunk(b"IHDR", header.encode()).encode()
        stream += Chunk(b"IDAT", zlib.compress(b"\x00" * 10)).encode()
        stream += Chunk(b"IEND", b"").encode()
        with pytest.raises(PngFormatError):
            decode_png(stream)


class TestPngCodec:
    def test_codec_roundtrip(self):
        codec = PngCodec()
        img = random_image(20, 30, seed=9)
        assert np.array_equal(codec.decode(codec.encode(img)), img)

    def test_codec_metadata(self):
        codec = PngCodec()
        assert codec.lossless
        assert codec.name == "png"

    def test_encode_image_wrapper(self):
        codec = PngCodec()
        img = random_image(5, 7)
        encoded = codec.encode_image(img)
        assert (encoded.width, encoded.height) == (7, 5)
        assert encoded.payload_type == codec.payload_type

    def test_codec_error_on_garbage(self):
        with pytest.raises(CodecError):
            PngCodec().decode(b"garbage")

    def test_bad_level_rejected(self):
        with pytest.raises(CodecError):
            PngCodec(compression_level=10)
