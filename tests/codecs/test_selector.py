"""Tests for content classification and codec selection (section 4.2)."""

import numpy as np

from repro.apps.photo import synthetic_photo, ui_screenshot
from repro.codecs.base import default_registry
from repro.codecs.selector import CodecSelector, ContentClassifier


class TestClassifier:
    def test_photo_is_photographic(self):
        stats = ContentClassifier().classify(synthetic_photo(128, 128, seed=0))
        assert stats.is_photographic

    def test_ui_is_synthetic(self):
        stats = ContentClassifier().classify(ui_screenshot(128, 128, seed=0))
        assert not stats.is_photographic

    def test_flat_is_synthetic(self, flat_image):
        assert not ContentClassifier().classify(flat_image).is_photographic

    def test_text_like_is_synthetic(self):
        from repro.surface.framebuffer import BLACK, Framebuffer, WHITE
        from repro.surface.text import draw_text

        fb = Framebuffer(200, 60, fill=WHITE)
        for row in range(0, 48, 10):
            draw_text(fb, 2, row, "THE QUICK BROWN FOX 0123", BLACK, WHITE)
        assert not ContentClassifier().classify(fb.array).is_photographic

    def test_subsampling_keeps_decision(self):
        photo = synthetic_photo(400, 400, seed=2)
        full = ContentClassifier(sample_cap=10**9).classify(photo)
        sampled = ContentClassifier(sample_cap=32 * 32).classify(photo)
        assert full.is_photographic == sampled.is_photographic

    def test_stats_ranges(self):
        stats = ContentClassifier().classify(synthetic_photo(64, 64, seed=1))
        assert 0.0 <= stats.distinct_color_fraction <= 1.0
        assert 0.0 <= stats.smooth_gradient_fraction <= 1.0


class TestSelector:
    def test_photo_gets_lossy(self):
        selector = CodecSelector(default_registry())
        codec = selector.select(synthetic_photo(96, 96, seed=3))
        assert codec.name == "lossy-dct"

    def test_ui_gets_lossless(self):
        selector = CodecSelector(default_registry())
        codec = selector.select(ui_screenshot(96, 96, seed=3))
        assert codec.name == "png"

    def test_lossy_disabled_always_lossless(self):
        selector = CodecSelector(default_registry(), allow_lossy=False)
        assert selector.select(synthetic_photo(96, 96, seed=4)).name == "png"

    def test_custom_lossless_choice(self):
        selector = CodecSelector(
            default_registry(), lossless_name="zlib", allow_lossy=False
        )
        assert selector.select(np.zeros((8, 8, 4), dtype=np.uint8)).name == "zlib"
