"""The vectorised PNG filter pipeline is bit-identical to the scalar one.

The encode hot path (``filter_image``/``encode_png``) and decode hot
path (``unfilter_image``) are whole-image NumPy kernels; these tests
pin them byte-for-byte against the retained scalar references in
:mod:`repro.codecs.png.reference` across every filter type, row-0 and
first-column edge cases, and adversarial content.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.png import decode_png, encode_png
from repro.codecs.png.filters import (
    ALL_FILTERS,
    BPP,
    apply_filter,
    choose_filter,
    filter_image,
    undo_filter,
    unfilter_image,
)
from repro.codecs.png.reference import (
    encode_png_scalar,
    scalar_apply_filter,
    scalar_choose_filter,
    scalar_undo_filter,
    unfilter_rows_scalar,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _corpus() -> list[tuple[str, np.ndarray]]:
    rng = _rng(7)
    ui = np.zeros((48, 64, 4), dtype=np.uint8)
    ui[:, :, 3] = 255
    ui[8:16, 4:60] = (200, 200, 210, 255)  # a "toolbar"
    ui[20:44, 8:56] = (255, 255, 255, 255)  # a "document"
    ui[22:42:4, 10:50] = (30, 30, 30, 255)  # "text" lines
    photo = rng.integers(0, 256, size=(48, 64, 4), dtype=np.uint8)
    grad = np.empty((48, 64, 4), dtype=np.uint8)
    for ch in range(4):
        grad[:, :, ch] = (
            np.add.outer(np.arange(48), np.arange(64)) * (ch + 1)
        ) % 256
    flat = np.full((48, 64, 4), 137, dtype=np.uint8)
    tiny = rng.integers(0, 256, size=(1, 1, 4), dtype=np.uint8)
    one_row = rng.integers(0, 256, size=(1, 64, 4), dtype=np.uint8)
    one_col = rng.integers(0, 256, size=(48, 1, 4), dtype=np.uint8)
    return [
        ("ui", ui), ("photo", photo), ("grad", grad), ("flat", flat),
        ("tiny", tiny), ("one_row", one_row), ("one_col", one_col),
    ]


class TestFilterEquivalence:
    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_apply_filter_matches_scalar(self, filter_type):
        rng = _rng(filter_type)
        row = rng.integers(0, 256, 64 * BPP, dtype=np.uint8)
        prev = rng.integers(0, 256, 64 * BPP, dtype=np.uint8)
        got = apply_filter(filter_type, row, prev)
        want = scalar_apply_filter(filter_type, row, prev)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_apply_filter_row0(self, filter_type):
        # Row 0: the prev scanline is all zeros by spec.
        row = _rng(filter_type + 10).integers(0, 256, 32 * BPP, dtype=np.uint8)
        zeros = np.zeros_like(row)
        got = apply_filter(filter_type, row, zeros)
        want = scalar_apply_filter(filter_type, row, zeros)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_undo_filter_matches_scalar(self, filter_type):
        rng = _rng(filter_type + 20)
        filtered = rng.integers(0, 256, 64 * BPP, dtype=np.uint8)
        prev = rng.integers(0, 256, 64 * BPP, dtype=np.uint8)
        got = undo_filter(filter_type, filtered, prev)
        want = scalar_undo_filter(filter_type, filtered, prev)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_undo_filter_row0(self, filter_type):
        filtered = _rng(filter_type + 30).integers(
            0, 256, 32 * BPP, dtype=np.uint8
        )
        zeros = np.zeros_like(filtered)
        got = undo_filter(filter_type, filtered, zeros)
        want = scalar_undo_filter(filter_type, filtered, zeros)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_roundtrip_per_row(self, filter_type):
        rng = _rng(filter_type + 40)
        row = rng.integers(0, 256, 48 * BPP, dtype=np.uint8)
        prev = rng.integers(0, 256, 48 * BPP, dtype=np.uint8)
        filtered = apply_filter(filter_type, row, prev)
        assert undo_filter(filter_type, filtered, prev).tolist() == row.tolist()

    def test_choose_filter_matches_scalar(self):
        rng = _rng(50)
        for _ in range(8):
            row = rng.integers(0, 256, 40 * BPP, dtype=np.uint8)
            prev = rng.integers(0, 256, 40 * BPP, dtype=np.uint8)
            got_t, got_row = choose_filter(row, prev)
            want_t, want_row = scalar_choose_filter(row, prev)
            assert got_t == want_t
            assert got_row.tolist() == want_row.tolist()

    def test_choose_filter_tie_breaks_to_lower_type(self):
        # A constant row ties None/Sub/Up/Average/Paeth scores in
        # various ways; both paths must resolve ties identically.
        row = np.zeros(16 * BPP, dtype=np.uint8)
        prev = np.zeros_like(row)
        got_t, _ = choose_filter(row, prev)
        want_t, _ = scalar_choose_filter(row, prev)
        assert got_t == want_t


class TestWholeImageEquivalence:
    @pytest.mark.parametrize("name,img", _corpus())
    def test_filter_image_matches_scalar_rows(self, name, img):
        h = img.shape[0]
        rows = img.reshape(h, -1)
        filtered = filter_image(rows)
        prev = np.zeros(rows.shape[1], dtype=np.uint8)
        for y in range(h):
            want_t, want_row = scalar_choose_filter(rows[y], prev)
            assert int(filtered[y, 0]) == want_t, f"{name} row {y}"
            assert filtered[y, 1:].tolist() == want_row.tolist()
            prev = rows[y]

    @pytest.mark.parametrize("name,img", _corpus())
    def test_unfilter_image_matches_scalar(self, name, img):
        h, w = img.shape[:2]
        rows = img.reshape(h, -1)
        filtered = filter_image(rows)
        raw = filtered.tobytes()
        want = unfilter_rows_scalar(raw, h, w * BPP)
        got = unfilter_image(filtered[:, 0], filtered[:, 1:])
        assert got.tolist() == want.tolist()
        assert got.tolist() == rows.tolist()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_unfilter_single_forced_filter(self, filter_type):
        # Every row forced to one filter exercises each batched kernel
        # (and the Up-run / Sub-batch fast paths) in isolation.
        img = _rng(filter_type + 60).integers(
            0, 256, size=(12, 16, 4), dtype=np.uint8
        )
        rows = img.reshape(12, -1)
        filtered = filter_image(rows, adaptive_filter=False,
                                fixed_filter=filter_type)
        assert (filtered[:, 0] == filter_type).all()
        got = unfilter_image(filtered[:, 0], filtered[:, 1:])
        assert got.tolist() == rows.tolist()

    def test_unfilter_rejects_unknown_type(self):
        types = np.array([0, 5], dtype=np.uint8)
        filtered = np.zeros((2, 4 * BPP), dtype=np.uint8)
        with pytest.raises(ValueError):
            unfilter_image(types, filtered)

    def test_workspace_reuse_is_stateless(self):
        # Two different images through the same cached workspace must
        # not leak state between calls.
        rng = _rng(70)
        img1 = rng.integers(0, 256, size=(20, 24, 4), dtype=np.uint8)
        img2 = rng.integers(0, 256, size=(20, 24, 4), dtype=np.uint8)
        rows1, rows2 = img1.reshape(20, -1), img2.reshape(20, -1)
        first = filter_image(rows1).copy()
        filter_image(rows2)
        again = filter_image(rows1)
        assert first.tolist() == again.tolist()


class TestEncodeEquivalence:
    @pytest.mark.parametrize("name,img", _corpus())
    def test_encode_png_identical_to_scalar(self, name, img):
        assert encode_png(img) == encode_png_scalar(img)

    @pytest.mark.parametrize("name,img", _corpus())
    def test_roundtrip_exact(self, name, img):
        assert (decode_png(encode_png(img)) == img).all()

    @pytest.mark.parametrize("filter_type", ALL_FILTERS)
    def test_fixed_filter_identical_to_scalar(self, filter_type):
        img = _rng(filter_type + 80).integers(
            0, 256, size=(10, 12, 4), dtype=np.uint8
        )
        got = encode_png(img, adaptive_filter=False, fixed_filter=filter_type)
        want = encode_png_scalar(
            img, adaptive_filter=False, fixed_filter=filter_type
        )
        assert got == want
        assert (decode_png(got) == img).all()

    def test_non_contiguous_input(self):
        base = _rng(90).integers(0, 256, size=(24, 40, 4), dtype=np.uint8)
        view = base[::2, ::2]  # non-contiguous slices
        assert not view.flags.c_contiguous
        assert encode_png(view) == encode_png_scalar(
            np.ascontiguousarray(view)
        )
