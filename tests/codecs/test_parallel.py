"""Parallel encode pool: byte-identity, crash tolerance, teardown."""

from __future__ import annotations

import glob
import struct
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codecs.lossy import LossyDctCodec, block_band_rows, plane_band_coefficients
from repro.codecs.parallel import (
    EncodePool,
    adler32_combine,
    deflate_band,
    encode_lossy_parallel,
    encode_png_parallel,
    row_bands,
    zlib_header,
)
from repro.codecs.png.decoder import decode_png
from repro.codecs.png.encoder import encode_png, filtered_scanlines
from repro.obs.instrumentation import Instrumentation
from repro.surface.damage import TileDiffer, band_spans, band_tile_changes


def _pixels(seed: int, h: int, w: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 256, size=(h, w, 4), dtype=np.uint8
    )


@pytest.fixture(scope="module")
def pool():
    with EncodePool(2, task_timeout=60.0) as p:
        yield p


class TestDeflateAlgebra:
    def test_adler32_combine_matches_zlib(self):
        rng = np.random.default_rng(0)
        for la, lb in [(0, 1), (1, 0), (1000, 70000), (65521, 65521)]:
            a = rng.integers(0, 256, la, dtype=np.uint8).tobytes()
            b = rng.integers(0, 256, lb, dtype=np.uint8).tobytes()
            assert adler32_combine(
                zlib.adler32(a), zlib.adler32(b), len(b)
            ) == zlib.adler32(a + b)

    def test_zlib_header_matches_every_level(self):
        for level in range(10):
            assert zlib_header(level) == zlib.compress(b"x", level)[:2]

    def test_band_members_form_one_zlib_stream(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        spans = row_bands(len(data), 4)
        members = [
            deflate_band(data[a:b], 6, final=(b == len(data)))
            for a, b in spans
        ]
        stream = (
            zlib_header(6)
            + b"".join(members)
            + struct.pack("!I", zlib.adler32(data))
        )
        assert zlib.decompress(stream) == data

    def test_row_bands_partition_exactly(self):
        for height in (1, 2, 7, 128, 481):
            for bands in (1, 2, 3, 8, 1000):
                spans = row_bands(height, bands)
                assert spans[0][0] == 0
                assert spans[-1][1] == height
                assert len(spans) <= bands
                for (_, e), (s, _) in zip(spans, spans[1:]):
                    assert e == s

    def test_block_band_rows_are_block_aligned(self):
        for height in (1, 8, 9, 100, 481):
            spans = block_band_rows(height, 3)
            assert spans[-1][1] == height
            for y0, _ in spans:
                assert y0 % 8 == 0


class TestPngByteIdentity:
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 24),
        bands=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    def test_scanline_stream_identical(self, pool, h, w, bands, seed):
        px = _pixels(seed, h, w)
        parallel = pool.filtered_scanline_bands(px, bands=bands)
        assert parallel == filtered_scanlines(px).tobytes()

    def test_scanline_stream_identical_fixed_filter(self, pool):
        from repro.codecs.png.filters import FILTER_PAETH

        px = _pixels(7, 33, 17)
        parallel = pool.filtered_scanline_bands(
            px, adaptive_filter=False, fixed_filter=FILTER_PAETH, bands=3
        )
        serial = filtered_scanlines(
            px, adaptive_filter=False, fixed_filter=FILTER_PAETH
        )
        assert parallel == serial.tobytes()

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 24),
        bands=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    def test_parallel_png_round_trips(self, pool, h, w, bands, seed):
        px = _pixels(seed, h, w)
        out = encode_png_parallel(px, pool, bands=bands)
        assert np.array_equal(decode_png(out), decode_png(encode_png(px)))

    def test_one_row_frame(self, pool):
        px = _pixels(3, 1, 64)
        out = encode_png_parallel(px, pool, bands=4)
        assert np.array_equal(decode_png(out), px)

    def test_no_pool_falls_back_to_serial_bytes(self):
        px = _pixels(4, 16, 16)
        assert encode_png_parallel(px, None) == encode_png(px)


class TestLossyByteIdentity:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 24),
        bands=st.integers(1, 6),
        quality=st.sampled_from([10, 50, 90]),
        seed=st.integers(0, 100),
    )
    def test_plane_bytes_identical(self, pool, h, w, bands, quality, seed):
        px = _pixels(seed, h, w)
        parallel = pool.lossy_plane_bands(px, quality, bands=bands)
        serial = plane_band_coefficients(px, quality)
        assert parallel == serial

    def test_parallel_lossy_decodes_like_serial(self, pool):
        codec = LossyDctCodec(60)
        px = _pixels(5, 37, 21)
        out = encode_lossy_parallel(px, pool, quality=60, bands=3)
        assert np.array_equal(codec.decode(out), codec.decode(codec.encode(px)))

    def test_no_pool_falls_back_to_serial_bytes(self):
        px = _pixels(6, 16, 16)
        assert encode_lossy_parallel(px, None, quality=70) == LossyDctCodec(
            70
        ).encode(px)


class TestDiffBands:
    def test_band_partition_matches_whole_image(self):
        rng = np.random.default_rng(9)
        prev = rng.integers(0, 256, (100, 70, 4), dtype=np.uint8)
        cur = prev.copy()
        cur[5:9, 60:64] ^= 0xFF
        cur[95:100, 0:3] ^= 0xFF
        prev32 = prev.view(np.uint32)[:, :, 0]
        cur32 = cur.view(np.uint32)[:, :, 0]
        whole = band_tile_changes(prev32, cur32, 0, 100, 16)
        for bands in (2, 3, 7):
            spans = band_spans(100, 16, bands)
            parts = [
                band_tile_changes(prev32, cur32, y0, y1, 16)
                for y0, y1 in spans
            ]
            assert np.array_equal(np.concatenate(parts), whole)

    def test_pooled_differ_matches_plain(self, pool):
        rng = np.random.default_rng(10)
        plain = TileDiffer(64, 64, tile=16)
        pooled = TileDiffer(64, 64, tile=16, bands=3, pool=pool)
        fb = pool.frame_buffer(64, 64)
        assert fb is not None
        for step in range(4):
            fb.array[:] = 0
            fb.array[step * 10 : step * 10 + 8, :, 1] = 200 + step
            a = plain.diff(fb.copy())
            b = pooled.diff(fb)
            assert a.rects == b.rects


class TestPoolLifecycle:
    def test_close_is_idempotent_and_unlinks_shm(self):
        pool = EncodePool(2)
        px = _pixels(11, 130, 20)
        encode_png_parallel(px, pool, bands=2)
        names = [f.block.shm._name for f in pool._frames]
        if pool._staging is not None:
            names.append(pool._staging.shm._name)
        pool.close()
        pool.close()
        assert pool.snapshot() == {
            "workers": 0, "worker_crashes": 0, "fallbacks": 0, "shm_bytes": 0,
        }
        for name in names:
            assert not glob.glob(f"/dev/shm{name}")

    def test_closed_pool_still_encodes_in_process(self):
        pool = EncodePool(1)
        pool.close()
        px = _pixels(12, 16, 16)
        assert encode_png_parallel(px, pool) == encode_png(px)

    def test_crashed_worker_recovers(self):
        with EncodePool(2) as pool:
            px = _pixels(13, 200, 30)
            first = encode_png_parallel(px, pool, bands=2)
            for handle in pool._handles:
                handle.process.kill()
                handle.process.join()
            # Every worker is gone: the dispatch notices, respawns, and
            # the frame still comes out correct (possibly in-process).
            second = encode_png_parallel(px, pool, bands=2)
            assert np.array_equal(decode_png(second), decode_png(first))
            assert pool.ensure_workers() == 2

    def test_metrics_flow_through_instrumentation(self):
        obs = Instrumentation()
        with EncodePool(1, obs=obs) as pool:
            encode_png_parallel(_pixels(14, 150, 20), pool, bands=2)
            assert obs.registry.total("encode.bands") == 2
            assert obs.registry.total("encode.workers") == 1
            assert obs.registry.total("encode.shm_bytes") > 0
            assert obs.registry.total("encode.pool_saturated") == 1
        assert obs.registry.total("encode.workers") == 0
        assert obs.registry.total("encode.shm_bytes") == 0

    def test_workers_clamped_to_at_least_one(self):
        with EncodePool(0) as pool:
            assert pool.workers >= 1
