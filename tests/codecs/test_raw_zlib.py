"""Tests for the raw and zlib baseline codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.base import CodecError
from repro.codecs.raw import RawCodec
from repro.codecs.zlib_codec import ZlibCodec


def random_image(h, w, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (h, w, 4)).astype(np.uint8)


class TestRaw:
    def test_roundtrip(self, noise_image):
        codec = RawCodec()
        assert np.array_equal(codec.decode(codec.encode(noise_image)), noise_image)

    def test_size_is_exact(self, noise_image):
        assert len(RawCodec().encode(noise_image)) == noise_image.nbytes + 8

    def test_truncated_rejected(self, noise_image):
        data = RawCodec().encode(noise_image)
        with pytest.raises(CodecError):
            RawCodec().decode(data[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(CodecError):
            RawCodec().decode(b"\x00\x01")

    def test_zero_dims_rejected(self):
        with pytest.raises(CodecError):
            RawCodec().decode(b"\x00\x00\x00\x00\x00\x00\x00\x00")

    def test_lossless_flag(self):
        assert RawCodec().lossless


class TestZlib:
    def test_roundtrip(self, noise_image):
        codec = ZlibCodec()
        assert np.array_equal(codec.decode(codec.encode(noise_image)), noise_image)

    def test_flat_compresses(self, flat_image):
        assert len(ZlibCodec().encode(flat_image)) < flat_image.nbytes / 10

    def test_levels(self, flat_image):
        for level in (0, 1, 9):
            codec = ZlibCodec(level=level)
            assert np.array_equal(
                codec.decode(codec.encode(flat_image)), flat_image
            )

    def test_bad_level(self):
        with pytest.raises(CodecError):
            ZlibCodec(level=10)

    def test_corrupt_stream_rejected(self, noise_image):
        data = bytearray(ZlibCodec().encode(noise_image))
        data[10] ^= 0xFF
        with pytest.raises(CodecError):
            ZlibCodec().decode(bytes(data))

    def test_length_mismatch_rejected(self, noise_image):
        import struct
        import zlib as z

        # Valid zlib stream but wrong pixel count for claimed dims.
        payload = struct.pack("!II", 10, 10) + z.compress(b"\x00" * 16)
        with pytest.raises(CodecError):
            ZlibCodec().decode(payload)

    @given(h=st.integers(1, 20), w=st.integers(1, 20), seed=st.integers(0, 50))
    @settings(max_examples=20)
    def test_roundtrip_property(self, h, w, seed):
        img = random_image(h, w, seed)
        codec = ZlibCodec()
        assert np.array_equal(codec.decode(codec.encode(img)), img)
