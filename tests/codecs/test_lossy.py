"""Tests for the DCT lossy codec (the JPEG stand-in)."""

import numpy as np
import pytest

from repro.apps.photo import synthetic_photo, ui_screenshot
from repro.codecs.base import CodecError
from repro.codecs.lossy import LossyDctCodec


class TestRoundtripShape:
    @pytest.mark.parametrize("size", [(8, 8), (16, 24), (13, 17), (1, 1), (5, 64)])
    def test_shape_preserved(self, size):
        h, w = size
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, (h, w, 4)).astype(np.uint8)
        codec = LossyDctCodec(quality=80)
        out = codec.decode(codec.encode(img))
        assert out.shape == (h, w, 4)
        assert out.dtype == np.uint8

    def test_alpha_decodes_opaque(self):
        img = np.zeros((8, 8, 4), dtype=np.uint8)
        codec = LossyDctCodec()
        out = codec.decode(codec.encode(img))
        assert (out[:, :, 3] == 255).all()


class TestQuality:
    def test_flat_image_near_exact(self):
        img = np.empty((16, 16, 4), dtype=np.uint8)
        img[:, :] = (120, 64, 200, 255)
        codec = LossyDctCodec(quality=90)
        out = codec.decode(codec.encode(img))
        err = np.abs(out[:, :, :3].astype(int) - img[:, :, :3].astype(int))
        assert err.max() <= 4

    def test_photo_psnr_reasonable(self):
        photo = synthetic_photo(64, 64, seed=3)
        codec = LossyDctCodec(quality=75)
        decoded = codec.decode(codec.encode(photo))
        assert codec.psnr(photo, decoded) > 30.0

    def test_higher_quality_higher_psnr(self):
        photo = synthetic_photo(64, 64, seed=4)
        low = LossyDctCodec(quality=20)
        high = LossyDctCodec(quality=95)
        psnr_low = low.psnr(photo, low.decode(low.encode(photo)))
        psnr_high = high.psnr(photo, high.decode(high.encode(photo)))
        assert psnr_high > psnr_low

    def test_higher_quality_larger_payload(self):
        photo = synthetic_photo(64, 64, seed=5)
        assert len(LossyDctCodec(quality=95).encode(photo)) > len(
            LossyDctCodec(quality=20).encode(photo)
        )

    def test_psnr_inf_for_identical(self):
        img = np.zeros((8, 8, 4), dtype=np.uint8)
        assert LossyDctCodec().psnr(img, img) == float("inf")


class TestCompression:
    def test_beats_raw_on_photo(self):
        photo = synthetic_photo(96, 96, seed=6)
        encoded = LossyDctCodec(quality=60).encode(photo)
        assert len(encoded) < photo.nbytes / 3

    def test_metadata(self):
        codec = LossyDctCodec()
        assert not codec.lossless
        assert codec.name == "lossy-dct"


class TestErrors:
    def test_bad_quality(self):
        with pytest.raises(CodecError):
            LossyDctCodec(quality=0)
        with pytest.raises(CodecError):
            LossyDctCodec(quality=101)

    def test_truncated_payload(self):
        with pytest.raises(CodecError):
            LossyDctCodec().decode(b"\x00\x01")

    def test_corrupt_body(self):
        img = np.zeros((8, 8, 4), dtype=np.uint8)
        data = bytearray(LossyDctCodec().encode(img))
        data[12] ^= 0xFF
        with pytest.raises(CodecError):
            LossyDctCodec().decode(bytes(data))

    def test_wrong_coefficient_count(self):
        import struct
        import zlib

        payload = struct.pack("!IIB", 8, 8, 75) + zlib.compress(b"\x00" * 10)
        with pytest.raises(CodecError):
            LossyDctCodec().decode(payload)


class TestStability:
    def test_recompression_fixed_point(self):
        """Re-encoding a decoded image at the same quality converges:
        the second generation is nearly identical to the first (the
        quantisation grid is a fixed point)."""
        photo = synthetic_photo(64, 64, seed=8)
        codec = LossyDctCodec(quality=75)
        first = codec.decode(codec.encode(photo))
        second = codec.decode(codec.encode(first))
        assert codec.psnr(first, second) > 45.0

    def test_decode_deterministic(self):
        photo = synthetic_photo(32, 32, seed=9)
        codec = LossyDctCodec(quality=60)
        data = codec.encode(photo)
        a = codec.decode(data)
        b = codec.decode(data)
        assert np.array_equal(a, b)

    def test_encode_deterministic(self):
        photo = synthetic_photo(32, 32, seed=10)
        codec = LossyDctCodec(quality=60)
        assert codec.encode(photo) == codec.encode(photo)


class TestUiVsPhoto:
    def test_ui_content_degrades_more_visibly(self):
        """Sharp-edged UI content has worse PSNR than smooth photos at
        equal quality — the draft's rationale for keeping PNG for
        computer-generated content."""
        ui = ui_screenshot(64, 64, seed=1)
        photo = synthetic_photo(64, 64, seed=1)
        codec = LossyDctCodec(quality=50)
        psnr_ui = codec.psnr(ui, codec.decode(codec.encode(ui)))
        psnr_photo = codec.psnr(photo, codec.decode(codec.encode(photo)))
        assert psnr_photo > psnr_ui
