"""Tests for the codec/payload-type registry."""

import pytest

from repro.codecs.base import (
    CodecError,
    CodecRegistry,
    PT_PNG,
    default_registry,
)
from repro.codecs.png import PngCodec
from repro.codecs.raw import RawCodec


class TestRegistry:
    def test_default_has_mandatory_png(self):
        """'All AH and participant software implementations MUST
        support PNG images' (section 5.2.2)."""
        registry = default_registry()
        assert registry.supports(PT_PNG)
        assert registry.by_name("png").lossless

    def test_default_codecs(self):
        registry = default_registry()
        assert set(registry.names()) == {"png", "raw", "zlib", "lossy-dct"}

    def test_lookup_by_pt(self):
        registry = default_registry()
        codec = registry.by_payload_type(PT_PNG)
        assert codec.name == "png"

    def test_unknown_pt_rejected(self):
        with pytest.raises(CodecError):
            default_registry().by_payload_type(50)

    def test_unknown_name_rejected(self):
        with pytest.raises(CodecError):
            default_registry().by_name("theora")

    def test_duplicate_pt_rejected(self):
        registry = CodecRegistry()
        registry.register(PngCodec())
        clone = PngCodec()
        with pytest.raises(CodecError):
            registry.register(clone)

    def test_duplicate_name_rejected(self):
        registry = CodecRegistry()
        registry.register(PngCodec())
        rogue = RawCodec()
        rogue.name = "png"  # type: ignore[misc]
        with pytest.raises(CodecError):
            registry.register(rogue)

    def test_intersect_names(self):
        registry = default_registry()
        agreed = registry.intersect_names(["theora", "png", "zlib"])
        assert agreed == ["png", "zlib"]

    def test_payload_types_sorted(self):
        pts = default_registry().payload_types()
        assert pts == sorted(pts)
