"""Tests for BFCP message encoding (RFC 4582 subset)."""

import pytest

from repro.bfcp.messages import (
    ATTR_FLOOR_REQUEST_ID,
    ATTR_REQUEST_STATUS,
    ATTR_STATUS_INFO,
    Attribute,
    BfcpError,
    BfcpMessage,
    PRIMITIVE_FLOOR_RELEASE,
    PRIMITIVE_FLOOR_REQUEST,
    PRIMITIVE_FLOOR_REQUEST_STATUS,
    STATUS_GRANTED,
    floor_release,
    floor_request,
    floor_request_status,
    read_request_status,
    read_u16,
)


class TestAttributes:
    def test_padding_to_32_bits(self):
        attr = Attribute(2, b"\x00\x01")  # 2+2 = 4 bytes, no pad
        assert len(attr.encode()) == 4
        attr3 = Attribute(2, b"\x00\x01\x02")  # 5 bytes → pad to 8
        assert len(attr3.encode()) == 8

    def test_mandatory_bit(self):
        data = Attribute(2, b"", mandatory=True).encode()
        assert data[0] & 1
        data = Attribute(2, b"", mandatory=False).encode()
        assert not data[0] & 1

    def test_type_range(self):
        with pytest.raises(BfcpError):
            Attribute(0x80, b"").encode()


class TestMessages:
    def test_floor_request_roundtrip(self):
        msg = floor_request(conference_id=7, transaction_id=3, user_id=12,
                            floor_id=0)
        decoded = BfcpMessage.decode(msg.encode())
        assert decoded.primitive == PRIMITIVE_FLOOR_REQUEST
        assert decoded.conference_id == 7
        assert decoded.transaction_id == 3
        assert decoded.user_id == 12

    def test_floor_release_roundtrip(self):
        msg = floor_release(1, 2, 3, request_id=55)
        decoded = BfcpMessage.decode(msg.encode())
        assert decoded.primitive == PRIMITIVE_FLOOR_RELEASE
        assert read_u16(decoded.find(ATTR_FLOOR_REQUEST_ID)) == 55

    def test_status_with_hid(self):
        msg = floor_request_status(
            1, 2, 3, request_id=9, status=STATUS_GRANTED, hid_status=3
        )
        decoded = BfcpMessage.decode(msg.encode())
        assert decoded.primitive == PRIMITIVE_FLOOR_REQUEST_STATUS
        status, position = read_request_status(
            decoded.find(ATTR_REQUEST_STATUS)
        )
        assert status == STATUS_GRANTED
        assert position == 0
        assert read_u16(decoded.find(ATTR_STATUS_INFO)) == 3

    def test_status_queue_position(self):
        msg = floor_request_status(1, 2, 3, 9, status=2, queue_position=4)
        decoded = BfcpMessage.decode(msg.encode())
        _status, position = read_request_status(decoded.find(ATTR_REQUEST_STATUS))
        assert position == 4

    def test_header_layout(self):
        data = floor_request(0x11223344, 0x5566, 0x7788, 0).encode()
        assert data[0] >> 5 == 1  # version
        assert data[1] == PRIMITIVE_FLOOR_REQUEST
        length_words = int.from_bytes(data[2:4], "big")
        assert len(data) == 12 + 4 * length_words

    def test_truncated_rejected(self):
        data = floor_request(1, 2, 3, 0).encode()
        with pytest.raises(BfcpError):
            BfcpMessage.decode(data[:-2])

    def test_bad_version_rejected(self):
        data = bytearray(floor_request(1, 2, 3, 0).encode())
        data[0] = 0x40  # version 2
        with pytest.raises(BfcpError):
            BfcpMessage.decode(bytes(data))

    def test_unknown_status_rejected(self):
        with pytest.raises(BfcpError):
            floor_request_status(1, 2, 3, 4, status=99)

    def test_find_missing_attribute(self):
        msg = floor_request(1, 2, 3, 0)
        assert msg.find(ATTR_STATUS_INFO) is None
