"""Tests for the floor control server/client pair (Appendix A)."""

import pytest

from repro.bfcp.client import FloorControlClient, FloorState
from repro.bfcp.hid_status import HidStatus
from repro.bfcp.server import FloorControlServer
from repro.rtp.clock import SimulatedClock


class TestHidStatus:
    def test_figure20_values(self):
        """Figure 20: the four HID status values."""
        assert HidStatus.STATE_NOT_ALLOWED == 0
        assert HidStatus.STATE_KEYBOARD_ALLOWED == 1
        assert HidStatus.STATE_MOUSE_ALLOWED == 2
        assert HidStatus.STATE_ALL_ALLOWED == 3

    def test_allows(self):
        assert HidStatus.STATE_ALL_ALLOWED.allows("keyboard")
        assert HidStatus.STATE_ALL_ALLOWED.allows("mouse")
        assert HidStatus.STATE_KEYBOARD_ALLOWED.allows("keyboard")
        assert not HidStatus.STATE_KEYBOARD_ALLOWED.allows("mouse")
        assert not HidStatus.STATE_NOT_ALLOWED.allows("keyboard")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            HidStatus.STATE_ALL_ALLOWED.allows("gamepad")


class TestServerFifo:
    def test_first_request_granted(self):
        server = FloorControlServer()
        server.request_floor("alice", user_id=1)
        assert server.holder_participant() == "alice"

    def test_fifo_queue(self):
        """Requests 'in a FIFO queue' (section 4.2)."""
        server = FloorControlServer()
        r1 = server.request_floor("alice", 1)
        r2 = server.request_floor("bob", 2)
        r3 = server.request_floor("carol", 3)
        assert server.queue_length == 2
        server.release_floor(r1)
        assert server.holder_participant() == "bob"
        server.release_floor(r2)
        assert server.holder_participant() == "carol"
        server.release_floor(r3)
        assert server.holder_participant() is None

    def test_queued_release_removes_from_queue(self):
        server = FloorControlServer()
        r1 = server.request_floor("alice", 1)
        r2 = server.request_floor("bob", 2)
        server.release_floor(r2)
        assert server.queue_length == 0
        server.release_floor(r1)
        assert server.holder_participant() is None

    def test_release_unknown_request(self):
        server = FloorControlServer()
        assert not server.release_floor(99)

    def test_timed_grant_rotates(self):
        clock = SimulatedClock()
        server = FloorControlServer(grant_duration=5.0, now=clock.now)
        server.request_floor("alice", 1)
        server.request_floor("bob", 2)
        clock.advance(6.0)
        server.tick()
        assert server.holder_participant() == "bob"

    def test_floor_check_gates_by_holder(self):
        server = FloorControlServer()
        server.request_floor("alice", 1)
        assert server.floor_check("alice", "mouse")
        assert not server.floor_check("bob", "mouse")

    def test_floor_check_respects_hid_status(self):
        server = FloorControlServer()
        server.request_floor("alice", 1)
        server.set_hid_status(HidStatus.STATE_KEYBOARD_ALLOWED)
        assert server.floor_check("alice", "keyboard")
        assert not server.floor_check("alice", "mouse")


class TestWireExchange:
    def _wire_pair(self):
        """Server + client connected through encoded byte messages."""
        server = FloorControlServer()
        sent_to_server = []
        client = FloorControlClient(
            user_id=1, send=lambda data: sent_to_server.append(data)
        )
        return server, client, sent_to_server

    def _deliver(self, server, client, sent):
        while sent:
            server.handle_message("p-client", sent.pop(0))
        for participant_id, data in server.drain_outbound():
            if participant_id == "p-client":
                client.handle_message(data)

    def test_request_grant_cycle(self):
        server, client, sent = self._wire_pair()
        client.request()
        self._deliver(server, client, sent)
        assert client.state is FloorState.HOLDING
        assert client.hid_status is HidStatus.STATE_ALL_ALLOWED
        assert server.holder_participant() == "p-client"

    def test_release_cycle(self):
        server, client, sent = self._wire_pair()
        client.request()
        self._deliver(server, client, sent)
        client.release()
        self._deliver(server, client, sent)
        assert client.state is FloorState.IDLE
        assert server.holder_participant() is None

    def test_queued_client_sees_position(self):
        server, client, sent = self._wire_pair()
        server.request_floor("other", 99)  # floor taken
        client.request()
        self._deliver(server, client, sent)
        assert client.state is FloorState.QUEUED
        assert client.queue_position == 1

    def test_hid_status_update_received(self):
        """'The participant MAY receive several Floor Granted messages
        with different HID Status values.'"""
        server, client, sent = self._wire_pair()
        client.request()
        self._deliver(server, client, sent)
        server.set_hid_status(HidStatus.STATE_MOUSE_ALLOWED)
        self._deliver(server, client, sent)
        assert client.hid_status is HidStatus.STATE_MOUSE_ALLOWED
        assert client.may_send("mouse")
        assert not client.may_send("keyboard")
        assert client.grants_received == 2

    def test_double_request_ignored(self):
        server, client, sent = self._wire_pair()
        client.request()
        client.request()  # no-op while pending
        assert len(sent) == 1

    def test_release_without_request(self):
        _server, client, sent = self._wire_pair()
        client.release()
        assert sent == []
