"""Chaos primitives: scripted partition/stall/heal/crash on the fabric."""

import pytest

from repro.net.channel import ChannelConfig, LossyChannel, duplex_lossy
from repro.net.simulator import Simulation
from repro.rtp.clock import SimulatedClock
from repro.sharing.transport import DatagramTransport


@pytest.fixture
def clock():
    return SimulatedClock()


class StubAH:
    """Just enough AH for Simulation: an advance() and no participants."""

    def advance(self, dt):
        pass


@pytest.fixture
def channel(clock):
    return LossyChannel(ChannelConfig(delay=0.01), clock.now)


class TestPartition:
    def test_partition_drops_everything_sent_after_the_cut(
        self, clock, channel
    ):
        channel.send(b"before")
        channel.partition()
        assert channel.partitioned
        channel.send(b"during")
        clock.advance(1.0)
        # In-flight datagrams left before the cut and still arrive.
        assert channel.receive_ready() == [b"before"]
        assert channel.datagrams_dropped_partition == 1
        assert channel.datagrams_dropped == 1

    def test_heal_restores_delivery(self, clock, channel):
        channel.partition()
        channel.send(b"lost")
        channel.heal()
        assert not channel.partitioned
        channel.send(b"after")
        clock.advance(1.0)
        assert channel.receive_ready() == [b"after"]


class TestStall:
    def test_stall_withholds_without_dropping(self, clock, channel):
        channel.send(b"frozen")
        channel.stall()
        clock.advance(1.0)
        assert channel.stalled
        assert channel.receive_ready() == []
        assert channel.datagrams_dropped == 0
        channel.heal()
        # Healing floods out everything whose arrival time has passed.
        assert channel.receive_ready() == [b"frozen"]

    def test_sender_keeps_sending_through_a_stall(self, clock, channel):
        channel.stall()
        for i in range(3):
            channel.send(bytes([i]))
        channel.heal()
        clock.advance(1.0)
        assert channel.receive_ready() == [bytes([i]) for i in range(3)]


class TestDuplex:
    def test_duplex_partition_cuts_both_directions(self, clock):
        duplex = duplex_lossy(ChannelConfig(delay=0.01), clock.now)
        duplex.partition()
        duplex.forward.send(b"fwd")
        duplex.backward.send(b"bwd")
        clock.advance(1.0)
        assert duplex.forward.receive_ready() == []
        assert duplex.backward.receive_ready() == []
        duplex.heal()
        duplex.forward.send(b"ok")
        clock.advance(1.0)
        assert duplex.forward.receive_ready() == [b"ok"]


class TestTransportClose:
    def test_udp_close_has_no_fin(self, clock):
        duplex = duplex_lossy(ChannelConfig(delay=0.01), clock.now)
        near = DatagramTransport(duplex.forward, duplex.backward)
        far = DatagramTransport(duplex.backward, duplex.forward)
        near.close()
        assert near.closed
        # The peer's side stays open — death is visible only as silence.
        assert not far.closed
        assert near.send_packet(b"x") is False
        assert near.receive_packets() == []
        far.send_packet(b"into the void")
        clock.advance(1.0)
        assert near.receive_packets() == []


class TestSimulationScripting:
    def test_partition_at_with_duration_auto_heals(self, clock):
        sim = Simulation(StubAH(), clock)
        channel = LossyChannel(ChannelConfig(delay=0.0), clock.now)
        sim.partition_at(1.0, channel, duration=2.0)
        sim.run_until(lambda: channel.partitioned, timeout=5.0)
        assert clock.now() == pytest.approx(1.0, abs=0.1)
        sim.run_until(lambda: not channel.partitioned, timeout=5.0)
        assert clock.now() == pytest.approx(3.0, abs=0.1)

    def test_stall_at_and_heal_at(self, clock):
        sim = Simulation(StubAH(), clock)
        channel = LossyChannel(ChannelConfig(delay=0.0), clock.now)
        sim.stall_at(0.5, channel)
        sim.heal_at(1.5, channel)
        sim.run_until(lambda: channel.stalled, timeout=5.0)
        sim.run_until(lambda: not channel.stalled, timeout=5.0)
        assert clock.now() >= 1.5

    def test_crash_at_kills_the_node(self, clock):
        class Node:
            crashed = False

            def crash(self):
                self.crashed = True

        sim = Simulation(StubAH(), clock)
        node = Node()
        sim.crash_at(2.0, node)
        sim.run_until(lambda: node.crashed, timeout=5.0)
        assert clock.now() >= 2.0
