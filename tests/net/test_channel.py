"""Tests for the simulated lossy/reliable channels."""

import pytest

from repro.net.channel import (
    ChannelConfig,
    LossyChannel,
    ReliableChannel,
    duplex_lossy,
    duplex_reliable,
)
from repro.rtp.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock()


class TestConfig:
    def test_defaults_valid(self):
        ChannelConfig()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(delay=-1)
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ChannelConfig(mtu=0)


class TestLossyChannel:
    def test_delivery_after_delay(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.1), clock.now)
        channel.send(b"hello")
        assert channel.receive_ready() == []
        clock.advance(0.05)
        assert channel.receive_ready() == []
        clock.advance(0.06)
        assert channel.receive_ready() == [b"hello"]

    def test_fifo_without_jitter(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.01), clock.now)
        for i in range(5):
            channel.send(bytes([i]))
        clock.advance(1)
        assert channel.receive_ready() == [bytes([i]) for i in range(5)]

    def test_loss_rate_applied(self, clock):
        channel = LossyChannel(
            ChannelConfig(delay=0, loss_rate=0.5, seed=3), clock.now
        )
        for _ in range(400):
            channel.send(b"x")
        clock.advance(1)
        survived = len(channel.receive_ready())
        assert 140 < survived < 260  # ~200 expected
        assert channel.datagrams_dropped == 400 - survived

    def test_determinism_by_seed(self, clock):
        def run(seed):
            c = LossyChannel(ChannelConfig(loss_rate=0.3, seed=seed), clock.now)
            return [c.send(bytes([i])) for i in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_oversize_dropped(self, clock):
        channel = LossyChannel(ChannelConfig(mtu=100), clock.now)
        assert not channel.send(b"x" * 101)
        assert channel.datagrams_oversize == 1

    def test_bandwidth_serialisation(self, clock):
        # 8000 bits/s → a 100-byte datagram takes 0.1 s to serialise.
        channel = LossyChannel(
            ChannelConfig(delay=0, bandwidth_bps=8000), clock.now
        )
        channel.send(b"x" * 100)
        channel.send(b"y" * 100)
        clock.advance(0.15)
        assert channel.receive_ready() == [b"x" * 100]
        clock.advance(0.1)
        assert channel.receive_ready() == [b"y" * 100]

    def test_jitter_can_reorder(self, clock):
        channel = LossyChannel(
            ChannelConfig(delay=0.01, jitter=0.1, seed=1), clock.now
        )
        for i in range(20):
            channel.send(bytes([i]))
            clock.advance(0.001)
        clock.advance(1)
        received = channel.receive_ready()
        assert sorted(received) == [bytes([i]) for i in range(20)]
        assert received != sorted(received)  # jitter reordered some

    def test_next_arrival(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.25), clock.now)
        assert channel.next_arrival() is None
        channel.send(b"a")
        assert channel.next_arrival() == pytest.approx(0.25)


class TestReliableChannel:
    def test_in_order_stream(self, clock):
        channel = ReliableChannel(ChannelConfig(delay=0.01), clock.now)
        channel.send(b"abc")
        channel.send(b"def")
        clock.advance(0.02)
        assert channel.receive_ready() == b"abcdef"

    def test_nothing_lost(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=80_000), clock.now
        )
        total = 0
        for i in range(50):
            assert channel.send(bytes([i]) * 10)
            total += 10
        clock.advance(10)
        assert len(channel.receive_ready()) == total

    def test_backlog_reflects_bandwidth(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000), clock.now
        )
        channel.send(b"x" * 1000)  # 1 second of serialisation
        assert channel.backlog_bytes() > 0
        clock.advance(2.0)
        assert channel.backlog_bytes() == 0

    def test_send_buffer_limit(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000),
            clock.now,
            send_buffer=500,
        )
        assert channel.send(b"x" * 400)
        assert not channel.send(b"y" * 400)  # buffer full → EWOULDBLOCK
        assert channel.sends_refused == 1
        clock.advance(1.0)  # drains
        assert channel.send(b"y" * 400)

    def test_can_send(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000),
            clock.now,
            send_buffer=100,
        )
        assert channel.can_send(100)
        channel.send(b"x" * 100)
        assert not channel.can_send(50)


class TestDuplexHelpers:
    def test_duplex_lossy_independent_loss(self, clock):
        pair = duplex_lossy(
            ChannelConfig(loss_rate=0.5, delay=0, seed=5), clock.now
        )
        forward = [pair.forward.send(b"f") for _ in range(64)]
        backward = [pair.backward.send(b"b") for _ in range(64)]
        assert forward != backward  # independent loss processes

    def test_duplex_reliable(self, clock):
        pair = duplex_reliable(ChannelConfig(delay=0.01), clock.now)
        pair.forward.send(b"ping")
        pair.backward.send(b"pong")
        clock.advance(0.02)
        assert pair.forward.receive_ready() == b"ping"
        assert pair.backward.receive_ready() == b"pong"


class TestFaultProfile:
    def test_validation(self):
        from repro.net.channel import FaultProfile

        with pytest.raises(ValueError):
            FaultProfile(p_good_bad=1.5)
        with pytest.raises(ValueError):
            FaultProfile(reorder_rate=-0.1)
        with pytest.raises(ValueError):
            FaultProfile(reorder_delay=-1)
        with pytest.raises(ValueError):
            FaultProfile.gilbert_elliott(1.0)
        with pytest.raises(ValueError):
            FaultProfile.gilbert_elliott(0.1, mean_burst=0.5)

    def test_gilbert_elliott_balance(self):
        """Stationary bad-state occupancy equals the requested rate."""
        from repro.net.channel import FaultProfile

        profile = FaultProfile.gilbert_elliott(0.10, mean_burst=4.0)
        p_gb, p_bg = profile.p_good_bad, profile.p_bad_good
        occupancy = p_gb / (p_gb + p_bg)
        assert occupancy == pytest.approx(0.10)
        assert p_bg == pytest.approx(0.25)  # 1 / mean_burst

    def test_zero_loss_profile_never_enters_bad(self):
        from repro.net.channel import FaultProfile

        profile = FaultProfile.gilbert_elliott(0.0)
        assert profile.p_good_bad == 0.0


class TestGilbertElliott:
    def test_long_run_statistics(self):
        """Loss rate and burstiness converge to the profile over many
        draws (seeded: exact values are stable)."""
        import random

        from repro.net.channel import FaultProfile, GilbertElliott

        profile = FaultProfile.gilbert_elliott(0.10, mean_burst=3.0)
        chain = GilbertElliott(profile, random.Random(42))
        n = 50_000
        losses = [chain.lose() for _ in range(n)]
        rate = sum(losses) / n
        assert 0.08 < rate < 0.12
        # Bursts: mean run length of consecutive losses near mean_burst.
        runs, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        assert 2.0 < mean_run < 4.0  # i.i.d. 10% loss would give ~1.1

    def test_deterministic_for_seed(self):
        import random

        from repro.net.channel import FaultProfile, GilbertElliott

        profile = FaultProfile.gilbert_elliott(0.2)
        a = GilbertElliott(profile, random.Random(7))
        b = GilbertElliott(profile, random.Random(7))
        assert [a.lose() for _ in range(500)] == [b.lose() for _ in range(500)]


class TestChannelFaults:
    def test_burst_loss_counted_separately(self, clock):
        from repro.net.channel import FaultProfile

        channel = LossyChannel(
            ChannelConfig(delay=0, seed=3), clock.now,
            faults=FaultProfile.gilbert_elliott(0.3, mean_burst=5.0),
        )
        for _ in range(2000):
            channel.send(b"x")
        assert channel.datagrams_dropped_burst > 0
        assert channel.datagrams_dropped == channel.datagrams_dropped_burst

    def test_duplication(self, clock):
        from repro.net.channel import FaultProfile

        channel = LossyChannel(
            ChannelConfig(delay=0, seed=1), clock.now,
            faults=FaultProfile(duplicate_rate=1.0),
        )
        channel.send(b"once")
        clock.advance(0.001)
        assert channel.receive_ready() == [b"once", b"once"]
        assert channel.datagrams_duplicated == 1

    def test_reordering_overtakes(self, clock):
        from repro.net.channel import FaultProfile

        channel = LossyChannel(
            ChannelConfig(delay=0.01, seed=1), clock.now,
            faults=FaultProfile(reorder_rate=0.0),
        )
        # Manually flip: first datagram held back, second goes normally.
        channel.set_faults(FaultProfile(reorder_rate=1.0, reorder_delay=0.05))
        channel.send(b"first")
        channel.set_faults(None)
        channel.send(b"second")
        clock.advance(0.02)
        assert channel.receive_ready() == [b"second"]
        clock.advance(0.05)
        assert channel.receive_ready() == [b"first"]
        assert channel.datagrams_reordered == 1

    def test_jitter_spike_delays(self, clock):
        from repro.net.channel import FaultProfile

        channel = LossyChannel(
            ChannelConfig(delay=0.01, seed=1), clock.now,
            faults=FaultProfile(jitter_spike_rate=1.0, jitter_spike=0.5),
        )
        channel.send(b"slow")
        clock.advance(0.02)
        assert channel.receive_ready() == []
        clock.advance(0.5)
        assert channel.receive_ready() == [b"slow"]

    def test_set_faults_mid_run(self, clock):
        from repro.net.channel import FaultProfile

        channel = LossyChannel(ChannelConfig(delay=0, seed=9), clock.now)
        assert channel.faults is None
        for _ in range(100):
            channel.send(b"x")
        assert channel.datagrams_dropped == 0
        profile = FaultProfile(loss_good=1.0, loss_bad=1.0)
        channel.set_faults(profile)
        assert channel.faults is profile
        channel.send(b"x")
        assert channel.datagrams_dropped == 1
        channel.set_faults(None)
        channel.send(b"x")
        assert channel.datagrams_dropped == 1

    def test_duplex_lossy_accepts_fault_profiles(self, clock):
        from repro.net.channel import FaultProfile

        pair = duplex_lossy(
            ChannelConfig(delay=0, seed=2), clock.now,
            faults=FaultProfile(duplicate_rate=1.0),
        )
        pair.forward.send(b"f")
        pair.backward.send(b"b")
        clock.advance(0.001)
        assert pair.forward.receive_ready() == [b"f", b"f"]
        assert pair.backward.receive_ready() == [b"b"]  # no back faults
