"""Tests for the simulated lossy/reliable channels."""

import pytest

from repro.net.channel import (
    ChannelConfig,
    LossyChannel,
    ReliableChannel,
    duplex_lossy,
    duplex_reliable,
)
from repro.rtp.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock()


class TestConfig:
    def test_defaults_valid(self):
        ChannelConfig()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(delay=-1)
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ChannelConfig(mtu=0)


class TestLossyChannel:
    def test_delivery_after_delay(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.1), clock.now)
        channel.send(b"hello")
        assert channel.receive_ready() == []
        clock.advance(0.05)
        assert channel.receive_ready() == []
        clock.advance(0.06)
        assert channel.receive_ready() == [b"hello"]

    def test_fifo_without_jitter(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.01), clock.now)
        for i in range(5):
            channel.send(bytes([i]))
        clock.advance(1)
        assert channel.receive_ready() == [bytes([i]) for i in range(5)]

    def test_loss_rate_applied(self, clock):
        channel = LossyChannel(
            ChannelConfig(delay=0, loss_rate=0.5, seed=3), clock.now
        )
        for _ in range(400):
            channel.send(b"x")
        clock.advance(1)
        survived = len(channel.receive_ready())
        assert 140 < survived < 260  # ~200 expected
        assert channel.datagrams_dropped == 400 - survived

    def test_determinism_by_seed(self, clock):
        def run(seed):
            c = LossyChannel(ChannelConfig(loss_rate=0.3, seed=seed), clock.now)
            return [c.send(bytes([i])) for i in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_oversize_dropped(self, clock):
        channel = LossyChannel(ChannelConfig(mtu=100), clock.now)
        assert not channel.send(b"x" * 101)
        assert channel.datagrams_oversize == 1

    def test_bandwidth_serialisation(self, clock):
        # 8000 bits/s → a 100-byte datagram takes 0.1 s to serialise.
        channel = LossyChannel(
            ChannelConfig(delay=0, bandwidth_bps=8000), clock.now
        )
        channel.send(b"x" * 100)
        channel.send(b"y" * 100)
        clock.advance(0.15)
        assert channel.receive_ready() == [b"x" * 100]
        clock.advance(0.1)
        assert channel.receive_ready() == [b"y" * 100]

    def test_jitter_can_reorder(self, clock):
        channel = LossyChannel(
            ChannelConfig(delay=0.01, jitter=0.1, seed=1), clock.now
        )
        for i in range(20):
            channel.send(bytes([i]))
            clock.advance(0.001)
        clock.advance(1)
        received = channel.receive_ready()
        assert sorted(received) == [bytes([i]) for i in range(20)]
        assert received != sorted(received)  # jitter reordered some

    def test_next_arrival(self, clock):
        channel = LossyChannel(ChannelConfig(delay=0.25), clock.now)
        assert channel.next_arrival() is None
        channel.send(b"a")
        assert channel.next_arrival() == pytest.approx(0.25)


class TestReliableChannel:
    def test_in_order_stream(self, clock):
        channel = ReliableChannel(ChannelConfig(delay=0.01), clock.now)
        channel.send(b"abc")
        channel.send(b"def")
        clock.advance(0.02)
        assert channel.receive_ready() == b"abcdef"

    def test_nothing_lost(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=80_000), clock.now
        )
        total = 0
        for i in range(50):
            assert channel.send(bytes([i]) * 10)
            total += 10
        clock.advance(10)
        assert len(channel.receive_ready()) == total

    def test_backlog_reflects_bandwidth(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000), clock.now
        )
        channel.send(b"x" * 1000)  # 1 second of serialisation
        assert channel.backlog_bytes() > 0
        clock.advance(2.0)
        assert channel.backlog_bytes() == 0

    def test_send_buffer_limit(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000),
            clock.now,
            send_buffer=500,
        )
        assert channel.send(b"x" * 400)
        assert not channel.send(b"y" * 400)  # buffer full → EWOULDBLOCK
        assert channel.sends_refused == 1
        clock.advance(1.0)  # drains
        assert channel.send(b"y" * 400)

    def test_can_send(self, clock):
        channel = ReliableChannel(
            ChannelConfig(delay=0, bandwidth_bps=8_000),
            clock.now,
            send_buffer=100,
        )
        assert channel.can_send(100)
        channel.send(b"x" * 100)
        assert not channel.can_send(50)


class TestDuplexHelpers:
    def test_duplex_lossy_independent_loss(self, clock):
        pair = duplex_lossy(
            ChannelConfig(loss_rate=0.5, delay=0, seed=5), clock.now
        )
        forward = [pair.forward.send(b"f") for _ in range(64)]
        backward = [pair.backward.send(b"b") for _ in range(64)]
        assert forward != backward  # independent loss processes

    def test_duplex_reliable(self, clock):
        pair = duplex_reliable(ChannelConfig(delay=0.01), clock.now)
        pair.forward.send(b"ping")
        pair.backward.send(b"pong")
        clock.advance(0.02)
        assert pair.forward.receive_ready() == b"ping"
        assert pair.backward.receive_ready() == b"pong"
