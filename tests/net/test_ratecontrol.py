"""Tests for token-bucket rate control (section 4.3)."""

import pytest

from repro.net.ratecontrol import TokenBucket
from repro.rtp.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock()


class TestTokenBucket:
    def test_burst_available_immediately(self, clock):
        bucket = TokenBucket(80_000, clock.now, burst_bytes=1000)
        assert bucket.try_consume(1000)
        assert not bucket.try_consume(1)

    def test_refill_at_rate(self, clock):
        bucket = TokenBucket(80_000, clock.now, burst_bytes=10_000)  # 10 kB/s
        bucket.try_consume(10_000)
        clock.advance(0.5)  # 5000 bytes refilled
        assert bucket.available() == pytest.approx(5000, abs=1)
        assert bucket.try_consume(5000)
        assert not bucket.try_consume(100)

    def test_never_exceeds_burst(self, clock):
        bucket = TokenBucket(80_000, clock.now, burst_bytes=2000)
        clock.advance(100)
        assert bucket.available() == 2000

    def test_sustained_rate_enforced(self, clock):
        bucket = TokenBucket(8_000, clock.now, burst_bytes=1000)  # 1 kB/s
        sent = 0
        for _ in range(100):
            if bucket.try_consume(100):
                sent += 100
            clock.advance(0.1)
        # 10 seconds at 1 kB/s plus the initial 1 kB burst.
        assert 10_000 <= sent <= 11_100

    def test_time_until(self, clock):
        bucket = TokenBucket(8_000, clock.now, burst_bytes=1000)
        bucket.try_consume(1000)
        assert bucket.time_until(500) == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.time_until(500) == pytest.approx(0.0)

    def test_time_until_beyond_burst_is_fill_time(self, clock):
        bucket = TokenBucket(8_000, clock.now, burst_bytes=1000)
        bucket.try_consume(1000)
        assert bucket.time_until(10_000) == pytest.approx(1.0)

    def test_counters(self, clock):
        bucket = TokenBucket(8_000, clock.now, burst_bytes=100)
        bucket.try_consume(50)
        bucket.try_consume(500)
        assert bucket.bytes_admitted == 50
        assert bucket.bytes_deferred == 500

    def test_invalid_config(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(0, clock.now)
        with pytest.raises(ValueError):
            TokenBucket(100, clock.now, burst_bytes=0)

    def test_negative_size_rejected(self, clock):
        bucket = TokenBucket(100, clock.now)
        with pytest.raises(ValueError):
            bucket.try_consume(-1)
