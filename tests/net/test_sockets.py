"""Tests for the real loopback UDP/TCP transports."""

import time

import pytest

from repro.net.tcp import TcpListener, connect
from repro.net.udp import MAX_DATAGRAM, UdpEndpoint


def drain_udp(endpoint, expected, timeout=2.0):
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < expected and time.monotonic() < deadline:
        out.extend(endpoint.receive())
        time.sleep(0.001)
    return out


class TestUdpEndpoint:
    def test_send_receive(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            assert a.send_to(b"ping", b.address)
            received = drain_udp(b, 1)
            assert received[0][0] == b"ping"

    def test_multiple_datagrams_preserve_boundaries(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            for i in range(10):
                a.send_to(bytes([i]) * 10, b.address)
            received = drain_udp(b, 10)
            assert sorted(d for d, _ in received) == [
                bytes([i]) * 10 for i in range(10)
            ]

    def test_oversize_rejected(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            with pytest.raises(ValueError):
                a.send_to(b"x" * (MAX_DATAGRAM + 1), b.address)

    def test_counters(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            a.send_to(b"one", b.address)
            drain_udp(b, 1)
            assert a.datagrams_sent == 1
            assert b.datagrams_received == 1

    def test_receive_empty_when_idle(self):
        with UdpEndpoint() as a:
            assert a.receive() == []


def drain_tcp(conn, expected, timeout=2.0):
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < expected and time.monotonic() < deadline:
        out.extend(conn.receive_packets())
        conn.flush()
        time.sleep(0.001)
    return out


class TestTcpTransport:
    def test_framed_roundtrip(self):
        with TcpListener() as listener:
            client = connect(*listener.address)
            server_conns = []
            deadline = time.monotonic() + 2
            while not server_conns and time.monotonic() < deadline:
                server_conns = listener.accept_ready()
                time.sleep(0.001)
            assert server_conns
            server = server_conns[0]
            try:
                client.send_packet(b"hello rtp")
                packets = drain_tcp(server, 1)
                assert packets == [b"hello rtp"]
                server.send_packet(b"reply")
                packets = drain_tcp(client, 1)
                assert packets == [b"reply"]
            finally:
                client.close()
                server.close()

    def test_many_packets_preserve_boundaries(self):
        with TcpListener() as listener:
            client = connect(*listener.address)
            server = None
            deadline = time.monotonic() + 2
            while server is None and time.monotonic() < deadline:
                conns = listener.accept_ready()
                if conns:
                    server = conns[0]
                time.sleep(0.001)
            assert server is not None
            try:
                sent = [bytes([i % 256]) * (i % 50 + 1) for i in range(200)]
                for packet in sent:
                    client.send_packet(packet)
                    client.flush()
                received = drain_tcp(server, 200)
                assert received == sent
            finally:
                client.close()
                server.close()

    def test_backlog_counts_unflushed(self):
        with TcpListener() as listener:
            client = connect(*listener.address)
            try:
                # A freshly flushed connection has no userspace backlog.
                client.send_packet(b"x")
                assert client.backlog_bytes() >= 0
            finally:
                client.close()
