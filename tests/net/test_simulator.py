"""Tests for the session simulation driver."""

import pytest

from repro import quick_session
from repro.apps import TextEditorApp
from repro.net.simulator import Simulation
from repro.surface import Rect


def build_sim():
    ah, participant, clock = quick_session()
    sim = Simulation(ah, clock, dt=0.02)
    sim.add_participant(participant)
    window = ah.windows.create_window(Rect(0, 0, 200, 150))
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    return sim, editor, participant


class TestStepping:
    def test_run_counts_rounds(self):
        sim, _editor, _p = build_sim()
        sim.run(10)
        assert sim.rounds_run == 10
        assert sim.clock.now() == pytest.approx(0.2)

    def test_run_seconds(self):
        sim, _editor, _p = build_sim()
        sim.run_seconds(1.0)
        assert sim.clock.now() == pytest.approx(1.0)

    def test_drivers_invoked_with_round_index(self):
        sim, editor, _p = build_sim()
        seen = []
        sim.add_driver(seen.append)
        sim.run(5)
        assert seen == [0, 1, 2, 3, 4]

    def test_bad_dt(self):
        ah, _p, clock = quick_session()
        with pytest.raises(ValueError):
            Simulation(ah, clock, dt=0)


class TestConvergence:
    def test_run_until_converged(self):
        sim, editor, participant = build_sim()
        editor.type_text("content to deliver")
        assert sim.run_until_converged(timeout=10.0)
        assert participant.converged_with(sim.ah.windows)

    def test_run_until_custom_condition(self):
        sim, editor, participant = build_sim()
        editor.type_text("x")
        assert sim.run_until(lambda: participant.updates_applied > 0)

    def test_timeout_returns_false(self):
        sim, _editor, participant = build_sim()
        # A condition that can never hold.
        assert not sim.run_until(lambda: False, timeout=0.1)

    def test_no_participants_never_converged(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock)
        assert not sim.run_until_converged(timeout=0.1)


class TestObservability:
    def test_snapshot_includes_simulation_progress(self):
        from repro.obs import Instrumentation

        obs = Instrumentation()
        ah, participant, clock = quick_session(instrumentation=obs)
        sim = Simulation(ah, clock, dt=0.02)
        sim.add_participant(participant)
        sim.run(5)
        snap = sim.snapshot()
        assert snap["simulation"]["rounds"] == 5
        assert snap["simulation"]["time"] == pytest.approx(0.1)
        assert snap["simulation"]["dt"] == pytest.approx(0.02)
        # The simulation defaults to the AH's instrumentation.
        assert snap["counters"] == obs.snapshot()["counters"]

    def test_snapshot_without_instrumentation_still_works(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock)
        snap = sim.snapshot()
        assert snap["counters"] == {}
        assert snap["simulation"]["rounds"] == 0

    def test_sample_every_collects_periodic_snapshots(self):
        ah, participant, clock = quick_session()
        sim = Simulation(ah, clock, dt=0.02)
        sim.add_participant(participant)
        sim.sample_every(0.1)
        sim.run_seconds(1.0)
        assert len(sim.samples) == 10
        times = [t for t, _snap in sim.samples]
        assert times == sorted(times)
        assert all("simulation" in snap for _t, snap in sim.samples)

    def test_sample_every_custom_sampler(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock, dt=0.02)
        sim.sample_every(0.1, sampler=lambda: {"rounds": sim.rounds_run})
        sim.run_seconds(0.5)
        assert len(sim.samples) == 5
        rounds = [s["rounds"] for _t, s in sim.samples]
        assert rounds == sorted(rounds)
        # ~0.1 s apart at dt=0.02 → roughly every 5 rounds (float clock
        # accumulation may shift a boundary by one round).
        assert rounds[0] == 5
        assert rounds[-1] == 25

    def test_sample_every_rejects_bad_interval(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock)
        with pytest.raises(ValueError):
            sim.sample_every(0)

    def test_simulation_requires_advanceable_clock(self):
        ah, _p, _clock = quick_session()
        with pytest.raises(TypeError):
            Simulation(ah, clock=lambda: 0.0)


class TestRunUntilEdgeCases:
    def test_true_condition_runs_zero_steps(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock)
        assert sim.run_until(lambda: True, timeout=0.0)
        assert sim.rounds_run == 0

    def test_condition_true_exactly_at_deadline_observed(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock, dt=0.02)
        # Becomes true only on the final step before the deadline; the
        # loop must still evaluate it once more before giving up.
        assert sim.run_until(lambda: clock.now() >= 0.1, timeout=0.1)

    def test_timeout_consumes_expected_rounds(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock, dt=0.02)
        assert not sim.run_until(lambda: False, timeout=0.1)
        assert sim.rounds_run == 5
        assert clock.now() == pytest.approx(0.1)


class TestScriptedEvents:
    def test_at_fires_once_at_time(self):
        sim, _editor, _p = build_sim()
        fired = []
        sim.at(0.1, lambda: fired.append(sim.clock.now()))
        sim.run_seconds(0.3)
        assert len(fired) == 1
        assert fired[0] == pytest.approx(0.1, abs=sim.dt)

    def test_events_fire_in_time_order(self):
        sim, _editor, _p = build_sim()
        order = []
        sim.at(0.2, lambda: order.append("late"))
        sim.at(0.1, lambda: order.append("early"))
        sim.run_seconds(0.5)
        assert order == ["early", "late"]

    def test_same_time_preserves_registration_order(self):
        sim, _editor, _p = build_sim()
        order = []
        sim.at(0.1, lambda: order.append("a"))
        sim.at(0.1, lambda: order.append("b"))
        sim.run_seconds(0.2)
        assert order == ["a", "b"]

    def test_past_event_fires_on_next_step(self):
        sim, _editor, _p = build_sim()
        sim.run_seconds(1.0)
        fired = []
        sim.at(0.5, lambda: fired.append(True))  # already in the past
        sim.step()
        assert fired == [True]

    def test_event_can_reconfigure_channel_faults(self):
        """The intended use: flip a fault profile on a schedule."""
        from repro.net.channel import (
            ChannelConfig, FaultProfile, LossyChannel,
        )

        sim, _editor, _p = build_sim()
        channel = LossyChannel(ChannelConfig(delay=0), sim.clock.now)
        burst = FaultProfile.gilbert_elliott(0.5)
        sim.at(0.1, lambda: channel.set_faults(burst))
        sim.at(0.2, lambda: channel.set_faults(None))
        sim.run_seconds(0.15)
        assert channel.faults is burst
        sim.run_seconds(0.15)
        assert channel.faults is None
