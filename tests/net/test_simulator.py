"""Tests for the session simulation driver."""

import pytest

from repro import quick_session
from repro.apps import TextEditorApp
from repro.net.simulator import Simulation
from repro.surface import Rect


def build_sim():
    ah, participant, clock = quick_session()
    sim = Simulation(ah, clock, dt=0.02)
    sim.add_participant(participant)
    window = ah.windows.create_window(Rect(0, 0, 200, 150))
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    return sim, editor, participant


class TestStepping:
    def test_run_counts_rounds(self):
        sim, _editor, _p = build_sim()
        sim.run(10)
        assert sim.rounds_run == 10
        assert sim.clock.now() == pytest.approx(0.2)

    def test_run_seconds(self):
        sim, _editor, _p = build_sim()
        sim.run_seconds(1.0)
        assert sim.clock.now() == pytest.approx(1.0)

    def test_drivers_invoked_with_round_index(self):
        sim, editor, _p = build_sim()
        seen = []
        sim.add_driver(seen.append)
        sim.run(5)
        assert seen == [0, 1, 2, 3, 4]

    def test_bad_dt(self):
        ah, _p, clock = quick_session()
        with pytest.raises(ValueError):
            Simulation(ah, clock, dt=0)


class TestConvergence:
    def test_run_until_converged(self):
        sim, editor, participant = build_sim()
        editor.type_text("content to deliver")
        assert sim.run_until_converged(timeout=10.0)
        assert participant.converged_with(sim.ah.windows)

    def test_run_until_custom_condition(self):
        sim, editor, participant = build_sim()
        editor.type_text("x")
        assert sim.run_until(lambda: participant.updates_applied > 0)

    def test_timeout_returns_false(self):
        sim, _editor, participant = build_sim()
        # A condition that can never hold.
        assert not sim.run_until(lambda: False, timeout=0.1)

    def test_no_participants_never_converged(self):
        ah, _p, clock = quick_session()
        sim = Simulation(ah, clock)
        assert not sim.run_until_converged(timeout=0.1)
