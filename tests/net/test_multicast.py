"""Tests for simulated multicast fan-out."""

import pytest

from repro.net.channel import ChannelConfig
from repro.net.multicast import MulticastGroup
from repro.rtp.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock()


class TestMulticastGroup:
    def test_fan_out(self, clock):
        group = MulticastGroup(ChannelConfig(delay=0.01), clock.now)
        a = group.subscribe("a")
        b = group.subscribe("b")
        group.send(b"frame")
        clock.advance(0.02)
        assert a.receive_ready() == [b"frame"]
        assert b.receive_ready() == [b"frame"]

    def test_independent_loss_per_subscriber(self, clock):
        group = MulticastGroup(
            ChannelConfig(delay=0, loss_rate=0.4, seed=11), clock.now
        )
        a = group.subscribe("a")
        b = group.subscribe("b")
        for _ in range(200):
            group.send(b"x")
        clock.advance(1)
        got_a = len(a.receive_ready())
        got_b = len(b.receive_ready())
        assert got_a != got_b  # different loss realisations
        assert 80 < got_a < 170 and 80 < got_b < 170

    def test_double_subscribe_rejected(self, clock):
        group = MulticastGroup(ChannelConfig(), clock.now)
        group.subscribe("a")
        with pytest.raises(ValueError):
            group.subscribe("a")

    def test_unsubscribe(self, clock):
        group = MulticastGroup(ChannelConfig(delay=0), clock.now)
        a = group.subscribe("a")
        group.unsubscribe("a")
        group.send(b"x")
        clock.advance(1)
        assert a.receive_ready() == []
        assert group.subscriber_count == 0

    def test_send_counts_surviving_copies(self, clock):
        group = MulticastGroup(ChannelConfig(delay=0), clock.now)
        group.subscribe("a")
        group.subscribe("b")
        group.subscribe("c")
        assert group.send(b"x") == 3
        assert group.datagrams_sent == 1

    def test_subscriber_ids(self, clock):
        group = MulticastGroup(ChannelConfig(), clock.now)
        group.subscribe("p1")
        group.subscribe("p2")
        assert group.subscriber_ids() == ["p1", "p2"]

    def test_unsubscribe_during_fan_out(self, clock):
        # A delivery side effect that drops a subscriber mid-fan-out
        # (a relay reacting to a departed viewer) must not blow up the
        # iteration with "dictionary changed size during iteration".
        group = MulticastGroup(ChannelConfig(delay=0), clock.now)
        a = group.subscribe("a")
        group.subscribe("b")
        c = group.subscribe("c")

        original_send = a.send

        def departing_send(datagram):
            group.unsubscribe("b")
            return original_send(datagram)

        a.send = departing_send
        assert group.send(b"x") == 3  # snapshot still serves everyone
        assert group.subscriber_count == 2
        assert group.send(b"y") == 2  # next fan-out omits the departed
        clock.advance(1)
        assert a.receive_ready() == [b"x", b"y"]
        assert c.receive_ready() == [b"x", b"y"]
